/**
 * @file
 * Integration tests for network-unaware management (Section V).
 */

#include <gtest/gtest.h>

#include "memnet/experiment.hh"
#include "memnet/simulator.hh"

namespace memnet
{
namespace
{

SystemConfig
baseConfig()
{
    SystemConfig cfg;
    cfg.workload = "mixC";
    cfg.topology = TopologyKind::Star;
    cfg.sizeClass = SizeClass::Big;
    cfg.warmup = us(100);
    cfg.measure = us(400);
    return cfg;
}

TEST(UnawareManager, VwlReducesPowerVersusFullPower)
{
    Runner r;
    r.verbose = false;
    SystemConfig cfg = baseConfig();
    cfg.policy = Policy::Unaware;
    cfg.mechanism = BwMechanism::Vwl;
    cfg.alphaPct = 5.0;
    EXPECT_GT(r.powerReduction(cfg), 0.02);
}

TEST(UnawareManager, RooReducesPowerVersusFullPower)
{
    Runner r;
    r.verbose = false;
    SystemConfig cfg = baseConfig();
    cfg.policy = Policy::Unaware;
    cfg.mechanism = BwMechanism::None;
    cfg.roo = true;
    EXPECT_GT(r.powerReduction(cfg), 0.02);
}

TEST(UnawareManager, PerformanceLossTracksAlpha)
{
    Runner r;
    r.verbose = false;
    SystemConfig cfg = baseConfig();
    cfg.policy = Policy::Unaware;
    cfg.mechanism = BwMechanism::Vwl;
    cfg.roo = true;
    cfg.alphaPct = 2.5;
    // The paper: maximum throughput degradation 3.2% at alpha = 2.5%.
    // Allow headroom for our shorter windows and small networks.
    EXPECT_LT(r.degradation(cfg), 0.06);
}

TEST(UnawareManager, HigherAlphaNeverCostsPower)
{
    Runner r;
    r.verbose = false;
    SystemConfig lo = baseConfig();
    lo.policy = Policy::Unaware;
    lo.mechanism = BwMechanism::Vwl;
    lo.roo = true;
    SystemConfig hi = lo;
    lo.alphaPct = 2.5;
    hi.alphaPct = 5.0;
    // More slack should not increase power (tolerate sim noise).
    EXPECT_LT(r.get(hi).totalNetworkPowerW,
              r.get(lo).totalNetworkPowerW * 1.03);
}

TEST(UnawareManager, ColdLinksReachLowModes)
{
    // mixC's cold tail (flat CDF past 65%) leaves far modules nearly
    // untouched; unaware management must put their links into narrow
    // modes. We check via the link-hour histogram: some 0-1% util
    // link time must be in sub-16-lane modes.
    Runner r;
    r.verbose = false;
    SystemConfig cfg = baseConfig();
    cfg.policy = Policy::Unaware;
    cfg.mechanism = BwMechanism::Vwl;
    const RunResult &res = r.get(cfg);
    double narrow = 0.0;
    for (int bucket = 0; bucket <= 1; ++bucket) // <1% and 1-5% util
        for (int lane = 1; lane < kLaneModes; ++lane)
            narrow += res.linkHours[bucket][lane];
    EXPECT_GT(narrow, 0.0);
}

TEST(UnawareManager, TheCounterintuitivePathologyExists)
{
    // Section VI's motivation: under unaware management some very low
    // utilization (but nonzero) links remain at 16 lanes because their
    // modules generate almost no AMS. Look for 16-lane residency in
    // the 0-1% bucket.
    Runner r;
    r.verbose = false;
    SystemConfig cfg = baseConfig();
    cfg.workload = "mixB";
    cfg.policy = Policy::Unaware;
    cfg.mechanism = BwMechanism::Vwl;
    cfg.alphaPct = 2.5;
    const RunResult &res = r.get(cfg);
    EXPECT_GT(res.linkHours[0][0] + res.linkHours[1][0], 0.0);
}

TEST(UnawareManager, ViolationFeedbackEngagesUnderPressure)
{
    // A bursty workload with tight alpha must occasionally trip the
    // violation detector and snap links back to full power.
    SystemConfig cfg = baseConfig();
    cfg.workload = "mixB";
    cfg.policy = Policy::Unaware;
    cfg.mechanism = BwMechanism::Vwl;
    cfg.roo = true;
    cfg.alphaPct = 2.5;
    const RunResult res = runSimulation(cfg);
    // Not asserting a count: just that the run completes sanely with
    // management active and non-trivial traffic.
    EXPECT_GT(res.completedReads, 1000u);
    EXPECT_GT(res.totalNetworkPowerW, 0.0);
}

TEST(UnawareManager, DvfsSavesLessThanVwl)
{
    // Section VI-D: DVFS yields less power reduction than VWL at the
    // same alpha because of SERDES latency overheads.
    Runner r;
    r.verbose = false;
    SystemConfig vwl = baseConfig();
    vwl.policy = Policy::Unaware;
    vwl.mechanism = BwMechanism::Vwl;
    SystemConfig dvfs = vwl;
    dvfs.mechanism = BwMechanism::Dvfs;
    EXPECT_GE(r.powerReduction(vwl), r.powerReduction(dvfs) - 0.02);
}

TEST(UnawareManager, BigNetworksSaveMoreThanSmall)
{
    // The paper: 24% (big) vs 14% (small) overall power reduction.
    Runner r;
    r.verbose = false;
    SystemConfig small = baseConfig();
    small.sizeClass = SizeClass::Small;
    small.policy = Policy::Unaware;
    small.mechanism = BwMechanism::Vwl;
    small.roo = true;
    SystemConfig big = small;
    big.sizeClass = SizeClass::Big;
    EXPECT_GT(r.powerReduction(big), r.powerReduction(small) - 0.02);
}

} // namespace
} // namespace memnet
