/**
 * @file
 * Unit tests for the VWL/DVFS mode tables (Section IV).
 */

#include <gtest/gtest.h>

#include "linkpm/modes.hh"

namespace memnet
{
namespace
{

TEST(ModeTable, NoneHasSingleFullMode)
{
    const ModeTable &t = ModeTable::forMechanism(BwMechanism::None);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_DOUBLE_EQ(t.mode(0).bwFrac, 1.0);
    EXPECT_DOUBLE_EQ(t.mode(0).powerFrac, 1.0);
    EXPECT_EQ(t.transitionPs(), 0);
}

TEST(ModeTable, VwlLaneCountsAndPower)
{
    const ModeTable &t = ModeTable::forMechanism(BwMechanism::Vwl);
    ASSERT_EQ(t.size(), 4u);
    const int lanes[] = {16, 8, 4, 1};
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(t.mode(i).lanes, lanes[i]);
        // Power of an l-lane link is (l+1)/17 of full (I/O clock).
        EXPECT_NEAR(t.mode(i).powerFrac, (lanes[i] + 1) / 17.0, 1e-12);
        EXPECT_NEAR(t.mode(i).bwFrac, lanes[i] / 16.0, 1e-12);
        // VWL does not slow the SERDES.
        EXPECT_EQ(t.mode(i).serdesPs, LinkTiming::kSerdesPs);
    }
    EXPECT_EQ(t.transitionPs(), us(1));
}

TEST(ModeTable, DvfsBandwidthAndPowerPoints)
{
    const ModeTable &t = ModeTable::forMechanism(BwMechanism::Dvfs);
    ASSERT_EQ(t.size(), 4u);
    const double bw[] = {1.0, 0.8, 0.5, 0.14};
    const double pw[] = {1.0, 0.70, 0.35, 0.08};
    for (int i = 0; i < 4; ++i) {
        EXPECT_NEAR(t.mode(i).bwFrac, bw[i], 1e-12);
        EXPECT_NEAR(t.mode(i).powerFrac, pw[i], 1e-12);
    }
    EXPECT_EQ(t.transitionPs(), us(3));
}

TEST(ModeTable, DvfsSerdesScalesWithFrequency)
{
    const ModeTable &t = ModeTable::forMechanism(BwMechanism::Dvfs);
    EXPECT_EQ(t.mode(0).serdesPs, ns(3) + 200); // 3.2 ns
    EXPECT_EQ(t.mode(1).serdesPs, nsf(4.0));
    EXPECT_EQ(t.mode(2).serdesPs, nsf(6.4));
    // 14% bandwidth on an 8-lane bundle -> frequency ratio 0.28.
    EXPECT_EQ(t.mode(3).serdesPs, nsf(3.2 / 0.28));
    EXPECT_EQ(t.mode(3).lanes, 8);
}

TEST(ModeTable, ModesOrderedFullFirstDecreasingPower)
{
    for (BwMechanism m : {BwMechanism::Vwl, BwMechanism::Dvfs}) {
        const ModeTable &t = ModeTable::forMechanism(m);
        for (std::size_t i = 1; i < t.size(); ++i) {
            EXPECT_LT(t.mode(i).powerFrac, t.mode(i - 1).powerFrac);
            EXPECT_LT(t.mode(i).bwFrac, t.mode(i - 1).bwFrac);
        }
    }
}

TEST(RooConfig, DefaultsMatchPaper)
{
    RooConfig roo;
    ASSERT_EQ(roo.thresholdsPs.size(), 4u);
    EXPECT_EQ(roo.thresholdsPs[0], ns(32));
    EXPECT_EQ(roo.thresholdsPs[1], ns(128));
    EXPECT_EQ(roo.thresholdsPs[2], ns(512));
    EXPECT_EQ(roo.thresholdsPs[3], ns(2048));
    EXPECT_EQ(roo.wakeupPs, ns(14));
    EXPECT_DOUBLE_EQ(roo.offPowerFrac, 0.01);
    EXPECT_EQ(roo.fullModeIndex(), 3u);
}

TEST(LinkTiming, FlitAndRouterConstants)
{
    // 16 B per 0.64 ns equals 25 GB/s per direction.
    EXPECT_EQ(LinkTiming::kFullFlitPs, 640);
    EXPECT_EQ(LinkTiming::kSerdesPs, 3200);
    EXPECT_EQ(LinkTiming::kRouterPs, 4 * 640);
    EXPECT_EQ(LinkTiming::kBufferEntries, 128);
}

} // namespace
} // namespace memnet
