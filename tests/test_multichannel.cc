/**
 * @file
 * Tests for the multi-channel extension.
 */

#include <gtest/gtest.h>

#include "memnet/multichannel.hh"

namespace memnet
{
namespace
{

MultiChannelConfig
baseConfig(int channels, ChannelSpread spread)
{
    MultiChannelConfig mc;
    mc.base.workload = "mixC"; // 13 GB, hot head / cold tail
    mc.base.topology = TopologyKind::Star;
    mc.base.sizeClass = SizeClass::Big;
    mc.base.warmup = us(50);
    mc.base.measure = us(200);
    mc.channels = channels;
    mc.spread = spread;
    return mc;
}

TEST(MultiChannel, SingleChannelMatchesModuleCount)
{
    const MultiChannelResult r =
        runMultiChannel(baseConfig(1, ChannelSpread::InterleaveLines));
    EXPECT_EQ(r.totalModules, 13);
    EXPECT_EQ(r.channelPower.size(), 1u);
    EXPECT_GT(r.readsPerSec, 0.0);
}

TEST(MultiChannel, ChannelsSplitTheFootprint)
{
    const MultiChannelResult r =
        runMultiChannel(baseConfig(4, ChannelSpread::InterleaveLines));
    ASSERT_EQ(r.channelModules.size(), 4u);
    for (int m : r.channelModules)
        EXPECT_EQ(m, 4); // ceil(13/4 GB) at 1 GB per module
}

TEST(MultiChannel, InterleaveBalancesChannelUtilization)
{
    const MultiChannelResult r =
        runMultiChannel(baseConfig(4, ChannelSpread::InterleaveLines));
    double umin = 1.0, umax = 0.0;
    for (double u : r.channelUtil) {
        umin = std::min(umin, u);
        umax = std::max(umax, u);
    }
    EXPECT_GT(umin, 0.0);
    EXPECT_LT(umax - umin, 0.10);
}

TEST(MultiChannel, PartitionSkewsChannelUtilization)
{
    const MultiChannelResult r =
        runMultiChannel(baseConfig(4, ChannelSpread::Partition));
    // mixC's CDF puts ~60% of accesses in the first ~35% of space, so
    // channel 0 must be far busier than channel 3.
    ASSERT_EQ(r.channelUtil.size(), 4u);
    EXPECT_GT(r.channelUtil[0], 2.0 * r.channelUtil[3]);
}

TEST(MultiChannel, ScalingChannelsScalesThroughput)
{
    const MultiChannelResult one =
        runMultiChannel(baseConfig(1, ChannelSpread::InterleaveLines));
    const MultiChannelResult four =
        runMultiChannel(baseConfig(4, ChannelSpread::InterleaveLines));
    // rateScale = channels: aggregate throughput should grow
    // substantially (not necessarily 4x — cores saturate).
    EXPECT_GT(four.readsPerSec, 2.0 * one.readsPerSec);
}

TEST(MultiChannel, ManagementSavesMoreOnPartitionedChannels)
{
    MultiChannelConfig fp = baseConfig(4, ChannelSpread::Partition);
    MultiChannelConfig managed = fp;
    managed.base.policy = Policy::Aware;
    managed.base.mechanism = BwMechanism::Vwl;
    managed.base.roo = true;

    MultiChannelConfig fp_il =
        baseConfig(4, ChannelSpread::InterleaveLines);
    MultiChannelConfig managed_il = fp_il;
    managed_il.base.policy = Policy::Aware;
    managed_il.base.mechanism = BwMechanism::Vwl;
    managed_il.base.roo = true;

    const double save_part =
        1.0 - runMultiChannel(managed).totalPowerW /
                  runMultiChannel(fp).totalPowerW;
    const double save_il =
        1.0 - runMultiChannel(managed_il).totalPowerW /
                  runMultiChannel(fp_il).totalPowerW;
    EXPECT_GT(save_part, 0.0);
    EXPECT_GT(save_il, 0.0);
    // Partitioning concentrates idleness -> at least as much saving.
    EXPECT_GE(save_part, save_il - 0.03);
}

TEST(MultiChannel, InvalidChannelCountDies)
{
    MultiChannelConfig mc =
        baseConfig(0, ChannelSpread::InterleaveLines);
    EXPECT_DEATH(runMultiChannel(mc), "at least one channel");
}

} // namespace
} // namespace memnet
