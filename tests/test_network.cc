/**
 * @file
 * Integration tests for the assembled network: routing, end-to-end
 * latency, address mapping, energy composition.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/network.hh"
#include "sim/event_queue.hh"

namespace memnet
{
namespace
{

/** Host capturing read completions and write retirements. */
struct TestHost : public EndpointHost
{
    struct Done
    {
        std::uint64_t id;
        Tick when;
    };
    std::vector<Done> reads;
    std::vector<Done> writes;

    void
    readCompleted(Packet *pkt, Tick now) override
    {
        reads.push_back({pkt->id, now});
        delete pkt;
    }

    void
    writeRetired(Packet *pkt, Tick now) override
    {
        writes.push_back({pkt->id, now});
        delete pkt;
    }
};

class NetworkTest : public ::testing::Test
{
  protected:
    void
    build(TopologyKind kind, int n,
          std::uint64_t chunk = 4ULL << 30, bool interleave = false)
    {
        Topology topo = Topology::build(kind, n);
        RooConfig roo;
        AddressMap amap;
        amap.chunkBytes = chunk;
        amap.interleavePages = interleave;
        net = std::make_unique<Network>(eq, topo, dram,
                                        BwMechanism::None, roo, pm,
                                        amap);
        net->setHost(&host);
    }

    Packet *
    inject(PacketType type, std::uint64_t addr, std::uint64_t id)
    {
        Packet *p = new Packet;
        p->id = id;
        p->type = type;
        p->addr = addr;
        p->flits = flitsFor(type);
        p->issued = eq.now();
        net->inject(p);
        return p;
    }

    EventQueue eq;
    DramParams dram;
    HmcPowerModel pm;
    TestHost host;
    std::unique_ptr<Network> net;
};

/** Per-hop one-way latency for a k-flit packet on an idle full link. */
constexpr Tick
hopLatency(int flits)
{
    return flits * LinkTiming::kFullFlitPs + LinkTiming::kSerdesPs +
           LinkTiming::kRouterPs;
}

TEST_F(NetworkTest, ReadRoundTripSingleModule)
{
    build(TopologyKind::DaisyChain, 1);
    inject(PacketType::ReadReq, 0, 1);
    eq.run();
    ASSERT_EQ(host.reads.size(), 1u);
    // Request hop + 30 ns DRAM + response hop.
    EXPECT_EQ(host.reads[0].when,
              hopLatency(1) + ns(30) + hopLatency(5));
}

TEST_F(NetworkTest, ReadLatencyGrowsPerHop)
{
    build(TopologyKind::DaisyChain, 4, 1ULL << 30);
    // Address in the 4th GB -> module 3, depth 4.
    inject(PacketType::ReadReq, 3ULL << 30, 1);
    eq.run();
    ASSERT_EQ(host.reads.size(), 1u);
    EXPECT_EQ(host.reads[0].when,
              4 * hopLatency(1) + ns(30) + 4 * hopLatency(5));
}

TEST_F(NetworkTest, WritesRetireAtHomeModule)
{
    build(TopologyKind::DaisyChain, 2, 1ULL << 30);
    inject(PacketType::WriteReq, 1ULL << 30, 7);
    eq.run();
    ASSERT_EQ(host.writes.size(), 1u);
    EXPECT_EQ(host.reads.size(), 0u);
    // Two request hops (5-flit write) + 30 ns write service.
    EXPECT_EQ(host.writes[0].when, 2 * hopLatency(5) + ns(30));
}

TEST_F(NetworkTest, AddressMapChunksClamp)
{
    AddressMap m;
    m.chunkBytes = 4ULL << 30;
    m.modules = 3;
    EXPECT_EQ(m.moduleOf(0), 0);
    EXPECT_EQ(m.moduleOf((4ULL << 30) - 1), 0);
    EXPECT_EQ(m.moduleOf(4ULL << 30), 1);
    EXPECT_EQ(m.moduleOf(11ULL << 30), 2);
    // Beyond capacity clamps to the last module.
    EXPECT_EQ(m.moduleOf(100ULL << 30), 2);
}

TEST_F(NetworkTest, AddressMapInterleavesPages)
{
    AddressMap m;
    m.interleavePages = true;
    m.modules = 4;
    EXPECT_EQ(m.moduleOf(0), 0);
    EXPECT_EQ(m.moduleOf(4096), 1);
    EXPECT_EQ(m.moduleOf(4096 * 5), 1);
    EXPECT_EQ(m.moduleOf(4096 * 7 + 123), 3);
}

TEST_F(NetworkTest, TreeRoutingReachesAllModules)
{
    build(TopologyKind::TernaryTree, 13, 1ULL << 30);
    for (int m = 0; m < 13; ++m)
        inject(PacketType::ReadReq,
               (static_cast<std::uint64_t>(m) << 30) + 64 * m, 100 + m);
    eq.run();
    EXPECT_EQ(host.reads.size(), 13u);
}

TEST_F(NetworkTest, AvgModulesTraversedMatchesDepths)
{
    build(TopologyKind::DaisyChain, 3, 1ULL << 30);
    inject(PacketType::ReadReq, 0, 1);          // depth 1
    inject(PacketType::ReadReq, 1ULL << 30, 2); // depth 2
    inject(PacketType::ReadReq, 2ULL << 30, 3); // depth 3
    eq.run();
    EXPECT_DOUBLE_EQ(net->avgModulesTraversed(), 2.0);
    EXPECT_EQ(net->injectedPackets(), 3u);
}

TEST_F(NetworkTest, EnergyIncludesLeakageWithNoTraffic)
{
    build(TopologyKind::TernaryTree, 4);
    net->resetStats();
    eq.runUntil(us(10));
    const EnergyBreakdown e = net->collectEnergy(eq.now());
    const HmcPowerParams &p = pm.params(Radix::High);
    // Four high-radix modules leak for 10 us.
    EXPECT_NEAR(e.logicLeakJ, 4 * p.idleLogicW * 1e-5, 1e-12);
    EXPECT_NEAR(e.dramLeakJ, 4 * p.idleDramW * 1e-5, 1e-12);
    // All eight connectivity links idle at full power.
    EXPECT_NEAR(e.idleIoJ, 8 * pm.linkFullPowerW() * 1e-5, 1e-10);
    EXPECT_NEAR(e.activeIoJ, 0.0, 1e-12);
    EXPECT_NEAR(e.dramDynJ, 0.0, 1e-15);
}

TEST_F(NetworkTest, EnergyCountsDynamicPerAccess)
{
    build(TopologyKind::DaisyChain, 1);
    net->resetStats();
    for (int i = 0; i < 10; ++i)
        inject(PacketType::ReadReq, 64 * i, i);
    eq.run();
    const EnergyBreakdown e = net->collectEnergy(eq.now());
    const HmcPowerParams &p = pm.params(Radix::Low);
    EXPECT_NEAR(e.dramDynJ, 10 * p.dramAccessJ, 1e-12);
    // Router crossings: 10 requests (1 flit) + 10 responses counted
    // twice at the home module (vault -> link) = 10*1 + 10*5 flits.
    EXPECT_NEAR(e.logicDynJ, (10 + 50) * p.flitHopJ, 1e-12);
}

TEST_F(NetworkTest, ResetStatsClearsCounters)
{
    build(TopologyKind::DaisyChain, 2, 1ULL << 30);
    inject(PacketType::ReadReq, 0, 1);
    eq.run();
    net->resetStats();
    EXPECT_EQ(net->injectedPackets(), 0u);
    const EnergyBreakdown e = net->collectEnergy(eq.now());
    EXPECT_NEAR(e.totalJ(), 0.0, 1e-12);
}

TEST_F(NetworkTest, ChannelLinksAreModuleZeros)
{
    build(TopologyKind::Star, 5);
    EXPECT_EQ(net->requestLink(0).module(), 0);
    EXPECT_EQ(net->requestLink(0).type(), LinkType::Request);
    EXPECT_EQ(net->responseLink(0).type(), LinkType::Response);
    EXPECT_EQ(net->allLinks().size(), 10u);
}

} // namespace
} // namespace memnet
