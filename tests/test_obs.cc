/**
 * @file
 * Tests for the observability subsystem: JSON writer/parser round-trip,
 * the stats registry, the epoch JSONL schema, Chrome-trace validity,
 * debug-trace filtering, and — most importantly — that enabling any of
 * it does not perturb the simulation.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "memnet/simulator.hh"
#include "obs/debug_trace.hh"
#include "obs/json.hh"
#include "obs/stats_registry.hh"
#include "sim/log.hh"

namespace memnet
{
namespace
{

using obs::json::Value;

std::string
readFile(const std::string &path)
{
    std::ifstream is(path);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

/** A short managed run: several epochs, links sleeping and waking. */
SystemConfig
obsConfig()
{
    SystemConfig cfg;
    cfg.workload = "mixE";
    cfg.topology = TopologyKind::Star;
    cfg.sizeClass = SizeClass::Big;
    cfg.mechanism = BwMechanism::Vwl;
    cfg.roo = true;
    cfg.policy = Policy::Aware;
    cfg.warmup = us(50);
    cfg.measure = us(300);
    return cfg;
}

// ---------------------------------------------------------------------------
// JsonWriter / json::parse round-trip

TEST(ObsJson, WriterParserRoundTrip)
{
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.beginObject();
    w.field("int", std::int64_t{-42});
    w.field("uint", std::uint64_t{18446744073709551615ULL});
    w.field("pi", 3.25);
    w.field("yes", true);
    w.field("text", std::string("quote \" slash \\ tab \t"));
    w.key("null");
    w.null();
    w.key("arr");
    w.beginArray();
    w.value(std::int64_t{1});
    w.beginObject();
    w.field("nested", false);
    w.endObject();
    w.endArray();
    w.endObject();

    Value v;
    std::string err;
    ASSERT_TRUE(obs::json::parse(os.str(), &v, &err)) << err;
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.find("int")->number, -42.0);
    EXPECT_EQ(v.find("pi")->number, 3.25);
    EXPECT_TRUE(v.find("yes")->boolean);
    EXPECT_EQ(v.find("text")->string, "quote \" slash \\ tab \t");
    EXPECT_EQ(v.find("null")->kind, Value::Kind::Null);
    ASSERT_TRUE(v.find("arr")->isArray());
    ASSERT_EQ(v.find("arr")->array.size(), 2u);
    EXPECT_EQ(v.find("arr")->array[1].find("nested")->boolean, false);
}

TEST(ObsJson, NonFiniteDoublesBecomeNull)
{
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.beginArray();
    w.value(std::numeric_limits<double>::infinity());
    w.value(std::numeric_limits<double>::quiet_NaN());
    w.endArray();
    Value v;
    ASSERT_TRUE(obs::json::parse(os.str(), &v));
    ASSERT_EQ(v.array.size(), 2u);
    EXPECT_EQ(v.array[0].kind, Value::Kind::Null);
    EXPECT_EQ(v.array[1].kind, Value::Kind::Null);
}

TEST(ObsJson, ParserRejectsMalformedInput)
{
    Value v;
    EXPECT_FALSE(obs::json::parse("{\"a\":1,}", &v));
    EXPECT_FALSE(obs::json::parse("[1 2]", &v));
    EXPECT_FALSE(obs::json::parse("{\"a\":1} trailing", &v));
    EXPECT_FALSE(obs::json::parse("", &v));
}

// ---------------------------------------------------------------------------
// Stats registry

TEST(StatsRegistry, RegisterFindAndScope)
{
    obs::StatsRegistry reg;
    double live = 1.5;
    reg.add("power.total_w", "total power", [&] { return live; });
    auto link = reg.scope("link3.");
    link.addInt("flits", "flits sent", [] { return std::uint64_t{7}; });

    EXPECT_EQ(reg.size(), 2u);
    ASSERT_NE(reg.find("link3.flits"), nullptr);
    EXPECT_TRUE(reg.find("link3.flits")->integral);
    EXPECT_EQ(reg.find("nope"), nullptr);

    live = 2.5; // getters read the live value at dump time
    std::ostringstream os;
    reg.dumpJson(os);
    Value v;
    ASSERT_TRUE(obs::json::parse(os.str(), &v));
    EXPECT_EQ(v.find("power.total_w")->number, 2.5);
    EXPECT_EQ(v.find("link3.flits")->number, 7.0);
}

TEST(StatsRegistry, JsonDumpIsSortedByName)
{
    obs::StatsRegistry reg;
    reg.add("zz", "", [] { return 1.0; });
    reg.add("aa", "", [] { return 2.0; });
    reg.add("mm", "", [] { return 3.0; });
    std::ostringstream os;
    reg.dumpJson(os);
    const std::string s = os.str();
    EXPECT_LT(s.find("\"aa\""), s.find("\"mm\""));
    EXPECT_LT(s.find("\"mm\""), s.find("\"zz\""));
}

TEST(StatsRegistry, CsvDumpHasHeaderAndQuoting)
{
    obs::StatsRegistry reg;
    reg.add("a.b", "desc, with comma", [] { return 1.0; });
    std::ostringstream os;
    reg.dumpCsv(os);
    const std::string s = os.str();
    EXPECT_EQ(s.rfind("name,value,description\n", 0), 0u);
    EXPECT_NE(s.find("a.b"), std::string::npos);
    EXPECT_NE(s.find("\"desc, with comma\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end outputs of an instrumented run

class ObsRunTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Tag paths with the test name: under `ctest -j N` each TEST_F
        // is its own process, and fixed names in the shared TempDir
        // would let concurrent tests clobber each other's files.
        const std::string dir =
            ::testing::TempDir() + "obs_" +
            ::testing::UnitTest::GetInstance()->current_test_info()
                ->name() + "_";
        cfg = obsConfig();
        cfg.obs.statsJsonPath = dir + "stats.json";
        cfg.obs.statsCsvPath = dir + "stats.csv";
        cfg.obs.epochJsonlPath = dir + "epochs.jsonl";
        cfg.obs.chromeTracePath = dir + "trace.json";
        result = runSimulation(cfg);
    }

    SystemConfig cfg;
    RunResult result;
};

TEST_F(ObsRunTest, StatsJsonParsesAndCoversEveryLayer)
{
    Value v;
    std::string err;
    ASSERT_TRUE(obs::json::parse(readFile(cfg.obs.statsJsonPath), &v,
                                 &err))
        << err;
    ASSERT_TRUE(v.isObject());

    const Value *fired = v.find("sim.events_fired");
    ASSERT_NE(fired, nullptr);
    EXPECT_GT(fired->number, 0.0);
    EXPECT_EQ(static_cast<std::uint64_t>(fired->number),
              result.profile.eventsFired);

    // One stat per layer proves the whole hierarchy registered.
    EXPECT_NE(v.find("net.injected_packets"), nullptr);
    EXPECT_NE(v.find("link0.idle_energy_j"), nullptr);
    EXPECT_NE(v.find("module0.dram_accesses"), nullptr);
    EXPECT_NE(v.find("mgmt.epochs"), nullptr);
    EXPECT_GT(v.find("mgmt.epochs")->number, 0.0);

    // Every link of the 8-module network has its group, including the
    // stall-attribution counters.
    const int links = 2 * result.numModules;
    for (int i = 0; i < links; ++i) {
        const std::string prefix = "link" + std::to_string(i);
        EXPECT_NE(v.find(prefix + ".flits"), nullptr) << prefix;
        EXPECT_NE(v.find(prefix + ".wake_stall_s"), nullptr) << prefix;
        EXPECT_NE(v.find(prefix + ".retrain_stall_s"), nullptr)
            << prefix;
        EXPECT_NE(v.find(prefix + ".queue_peak"), nullptr) << prefix;
    }

    // The latency observatory (on by default) registers its percentile
    // counters for every component.
    for (const char *comp :
         {"end_to_end", "queue", "wake_stall", "retrain_stall",
          "serialization", "dram"}) {
        for (const char *k :
             {"samples", "sum_ps", "p50_ps", "p99_ps", "max_ps"}) {
            const std::string name =
                std::string("net.lat.") + comp + "." + k;
            ASSERT_NE(v.find(name), nullptr) << name;
        }
    }
    EXPECT_EQ(
        static_cast<std::uint64_t>(
            v.find("net.lat.end_to_end.samples")->number),
        result.completedReads);
}

TEST_F(ObsRunTest, StatsCsvMatchesJson)
{
    const std::string csv = readFile(cfg.obs.statsCsvPath);
    EXPECT_EQ(csv.rfind("name,value,description\n", 0), 0u);
    EXPECT_NE(csv.find("sim.events_fired"), std::string::npos);
    EXPECT_NE(csv.find("mgmt.epochs"), std::string::npos);
}

TEST_F(ObsRunTest, EpochJsonlRecordsFollowSchema)
{
    std::ifstream is(cfg.obs.epochJsonlPath);
    std::string line;
    int records = 0;
    std::size_t total_link_entries = 0;
    double last_epoch = 0.0;
    std::int64_t last_t = -1;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        Value v;
        std::string err;
        ASSERT_TRUE(obs::json::parse(line, &v, &err)) << err;
        ASSERT_TRUE(v.isObject());
        EXPECT_EQ(v.find("v")->number, 3.0);
        EXPECT_GT(v.find("epoch")->number, last_epoch);
        last_epoch = v.find("epoch")->number;
        const auto t =
            static_cast<std::int64_t>(v.find("t_ps")->number);
        EXPECT_GT(t, last_t);
        last_t = t;

        const Value *power = v.find("power_w");
        ASSERT_NE(power, nullptr);
        for (const char *k :
             {"idle_io", "active_io", "logic_leak", "dram_leak",
              "logic_dyn", "dram_dyn", "total"})
            ASSERT_NE(power->find(k), nullptr) << k;

        // Schema v3: per-cause average power from the attribution
        // ledger rides alongside the coarse power_w block.
        const Value *energy = v.find("energy_w");
        ASSERT_NE(energy, nullptr);
        for (const char *k :
             {"tx", "retrain", "idle_floor", "sleep", "wake",
              "serdes_leak", "router", "dram_leak", "dram_dyn"})
            ASSERT_NE(energy->find(k), nullptr) << k;

        const Value *mgmt = v.find("mgmt");
        ASSERT_NE(mgmt, nullptr);
        ASSERT_NE(mgmt->find("violations_total"), nullptr);

        // Schema v3 elides zero-activity links, so the array holds at
        // most every link and entries are identified by "id", not by
        // position.
        const Value *links = v.find("links");
        ASSERT_NE(links, nullptr);
        ASSERT_TRUE(links->isArray());
        EXPECT_LE(links->array.size(),
                  static_cast<std::size_t>(2 * result.numModules));
        for (const Value &le : links->array) {
            for (const char *k :
                 {"id", "reads", "actual_ps", "full_ps", "ams_ps",
                  "flo_ps", "grants", "forced_fp", "bw_mode",
                  "roo_mode", "off_s", "retrain_s", "mode_s",
                  "wake_stall_s", "retrain_stall_s", "queue_peak"})
                ASSERT_NE(le.find(k), nullptr) << k;
            const Value *ej = le.find("energy_j");
            ASSERT_NE(ej, nullptr);
            for (const char *k :
                 {"tx", "retrain", "idle_floor", "sleep", "wake"})
                ASSERT_NE(ej->find(k), nullptr) << k;
            total_link_entries++;
        }

        ASSERT_NE(v.find("faults"), nullptr);

        // Schema v2: per-epoch latency percentiles from exact sketch
        // deltas (max_ps deliberately absent — not diffable).
        const Value *lat = v.find("lat");
        ASSERT_NE(lat, nullptr);
        ASSERT_NE(lat->find("samples"), nullptr);
        for (const char *comp :
             {"end_to_end", "queue", "wake_stall", "retrain_stall",
              "serialization", "dram"}) {
            const Value *c = lat->find(comp);
            ASSERT_NE(c, nullptr) << comp;
            for (const char *k :
                 {"samples", "sum_ps", "p50_ps", "p90_ps", "p99_ps",
                  "p999_ps"})
                ASSERT_NE(c->find(k), nullptr) << comp << "." << k;
            ASSERT_EQ(c->find("max_ps"), nullptr) << comp;
        }
        ++records;
    }
    // 350 us of simulated time at the default 100 us epoch.
    EXPECT_GE(records, 2);
    // The workload drives traffic, so active links must survive the
    // v3 zero-activity elision.
    EXPECT_GT(total_link_entries, 0u);
}

TEST_F(ObsRunTest, ChromeTraceIsValidAndTimeOrdered)
{
    Value v;
    std::string err;
    ASSERT_TRUE(obs::json::parse(readFile(cfg.obs.chromeTracePath), &v,
                                 &err))
        << err;
    const Value *events = v.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    EXPECT_GT(events->array.size(), 10u);

    bool saw_process_meta = false, saw_thread_meta = false;
    bool saw_span = false, saw_instant = false, saw_counter = false;
    bool saw_energy = false;
    double last_ts = -1.0;
    for (const Value &e : events->array) {
        const Value *ph = e.find("ph");
        ASSERT_NE(ph, nullptr);
        ASSERT_NE(e.find("name"), nullptr);
        ASSERT_NE(e.find("pid"), nullptr);
        ASSERT_NE(e.find("tid"), nullptr);
        if (ph->string == "M") {
            if (e.find("name")->string == "process_name")
                saw_process_meta = true;
            if (e.find("name")->string == "thread_name")
                saw_thread_meta = true;
            continue; // metadata carries no timestamp ordering
        }
        const Value *ts = e.find("ts");
        ASSERT_NE(ts, nullptr);
        EXPECT_GE(ts->number, last_ts);
        last_ts = ts->number;
        if (ph->string == "X") {
            saw_span = true;
            EXPECT_GE(e.find("dur")->number, 0.0);
        }
        if (ph->string == "i")
            saw_instant = true;
        if (ph->string == "C") {
            saw_counter = true;
            if (e.find("name")->string == "energy_w") {
                // The energy observatory's per-cause average-power
                // samples live on the sim-wide "energy" track, one
                // per management epoch.
                saw_energy = true;
                EXPECT_EQ(e.find("pid")->number, 1.0);
                const Value *args = e.find("args");
                ASSERT_NE(args, nullptr);
                for (const char *k :
                     {"tx", "idle_floor", "sleep", "wake", "retrain",
                      "serdes_leak", "router", "dram_leak",
                      "dram_dyn"}) {
                    ASSERT_NE(args->find(k), nullptr) << k;
                }
            } else {
                // Per-link counters (stall attribution, queue peaks)
                // live on the link's module process, never the
                // sim-wide pid.
                EXPECT_GE(e.find("pid")->number, 10.0);
                ASSERT_NE(e.find("args"), nullptr);
            }
        }
    }
    EXPECT_TRUE(saw_process_meta); // Perfetto process grouping
    EXPECT_TRUE(saw_thread_meta);
    EXPECT_TRUE(saw_span);    // link TX / off / retrain spans
    EXPECT_TRUE(saw_instant); // epoch markers
    EXPECT_TRUE(saw_counter); // stall / queue-depth counter tracks
    EXPECT_TRUE(saw_energy);  // epoch average-watts per cause
}

// ---------------------------------------------------------------------------
// The determinism guarantee: observability never perturbs a run

TEST(ObsDeterminism, InstrumentedRunMatchesBareRun)
{
    const RunResult bare = runSimulation(obsConfig());

    const std::string dir = ::testing::TempDir();
    SystemConfig cfg = obsConfig();
    cfg.obs.statsJsonPath = dir + "det_stats.json";
    cfg.obs.epochJsonlPath = dir + "det_epochs.jsonl";
    cfg.obs.chromeTracePath = dir + "det_trace.json";
    const RunResult inst = runSimulation(cfg);

    // Every sim-derived field must be bit-identical; wallSeconds is the
    // one legitimately varying field.
    EXPECT_EQ(bare.profile.eventsFired, inst.profile.eventsFired);
    EXPECT_EQ(bare.profile.eventsScheduled,
              inst.profile.eventsScheduled);
    EXPECT_EQ(bare.completedReads, inst.completedReads);
    EXPECT_EQ(bare.violations, inst.violations);
    EXPECT_EQ(bare.totalNetworkPowerW, inst.totalNetworkPowerW);
    EXPECT_EQ(bare.perHmc.totalW(), inst.perHmc.totalW());
    EXPECT_EQ(bare.avgReadLatencyNs, inst.avgReadLatencyNs);
    EXPECT_EQ(bare.avgLinkUtil, inst.avgLinkUtil);
    EXPECT_EQ(bare.channelUtil, inst.channelUtil);
}

// ---------------------------------------------------------------------------
// Debug tracing

TEST(DebugTrace, SpecParsingSetsVerbosity)
{
    obs::setTraceSpec("LinkPM:2,ISP");
    EXPECT_EQ(obs::traceVerbosity(obs::TraceComp::LinkPM), 2);
    EXPECT_EQ(obs::traceVerbosity(obs::TraceComp::ISP), 1);
    EXPECT_EQ(obs::traceVerbosity(obs::TraceComp::Net), 0);

    obs::setTraceSpec("all:3");
    EXPECT_EQ(obs::traceVerbosity(obs::TraceComp::Workload), 3);

    obs::setTraceSpec("");
    EXPECT_EQ(obs::traceVerbosity(obs::TraceComp::LinkPM), 0);
    EXPECT_EQ(obs::traceVerbosity(obs::TraceComp::Workload), 0);
}

TEST(DebugTrace, EnabledPointsReachTheLogSink)
{
    std::vector<std::string> captured;
    LogSink prev = setLogSink([&](LogLevel level, const std::string &m) {
        if (level == LogLevel::Trace)
            captured.push_back(m);
    });
    obs::setTraceSpec("LinkPM");

    MEMNET_TRACE(LinkPM, "link ", 3, " slept");
    MEMNET_TRACE(Net, "filtered out");
    MEMNET_TRACE_V(LinkPM, 2, "too verbose for level 1");

    obs::setTraceSpec("");
    setLogSink(prev);

    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0], "LinkPM: link 3 slept");
}

TEST(DebugTrace, ManagedRunEmitsLinkPmTraffic)
{
    std::vector<std::string> captured;
    LogSink prev = setLogSink([&](LogLevel level, const std::string &m) {
        if (level == LogLevel::Trace)
            captured.push_back(m);
    });
    SystemConfig cfg = obsConfig();
    cfg.obs.traceSpec = "LinkPM";
    runSimulation(cfg);
    obs::setTraceSpec("");
    setLogSink(prev);

    EXPECT_FALSE(captured.empty());
    for (const std::string &m : captured)
        EXPECT_EQ(m.rfind("LinkPM: ", 0), 0u) << m;
}

} // namespace
} // namespace memnet
