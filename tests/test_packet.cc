/**
 * @file
 * Tests for packet/flit definitions and per-module routing accounting.
 */

#include <gtest/gtest.h>

#include <memory>

#include "net/network.hh"
#include "sim/event_queue.hh"

namespace memnet
{
namespace
{

TEST(Packet, FlitCountsPerPaper)
{
    // Read request: one 16 B flit; write request and read response:
    // five flits (64 B line + header).
    EXPECT_EQ(flitsFor(PacketType::ReadReq), 1);
    EXPECT_EQ(flitsFor(PacketType::WriteReq), 5);
    EXPECT_EQ(flitsFor(PacketType::ReadResp), 5);
    EXPECT_EQ(kFlitBytes, 16);
}

TEST(Packet, ReadPacketClassification)
{
    // Only read request/response latency enters the AMS accounting.
    EXPECT_TRUE(isReadPacket(PacketType::ReadReq));
    EXPECT_TRUE(isReadPacket(PacketType::ReadResp));
    EXPECT_FALSE(isReadPacket(PacketType::WriteReq));
}

TEST(Packet, ByteSizeFollowsFlits)
{
    Packet p;
    p.type = PacketType::ReadResp;
    p.flits = flitsFor(p.type);
    EXPECT_EQ(p.bytes(), 80);
    p.type = PacketType::ReadReq;
    p.flits = flitsFor(p.type);
    EXPECT_EQ(p.bytes(), 16);
}

/** Host swallowing all endpoint traffic. */
struct SwallowHost : public EndpointHost
{
    int reads = 0, writes = 0;
    void
    readCompleted(Packet *pkt, Tick) override
    {
        ++reads;
        delete pkt;
    }
    void
    writeRetired(Packet *pkt, Tick) override
    {
        ++writes;
        delete pkt;
    }
};

class ModuleRoutingTest : public ::testing::Test
{
  protected:
    void
    build(int n)
    {
        Topology topo = Topology::build(TopologyKind::DaisyChain, n);
        AddressMap amap;
        amap.chunkBytes = 1ULL << 30;
        net = std::make_unique<Network>(eq, topo, dram,
                                        BwMechanism::None, roo, pm,
                                        amap);
        net->setHost(&host);
    }

    void
    read(std::uint64_t addr)
    {
        Packet *p = new Packet;
        p->type = PacketType::ReadReq;
        p->addr = addr;
        p->flits = 1;
        net->inject(p);
    }

    EventQueue eq;
    DramParams dram;
    HmcPowerModel pm;
    RooConfig roo;
    SwallowHost host;
    std::unique_ptr<Network> net;
};

TEST_F(ModuleRoutingTest, IntermediateModulesCountTransitFlits)
{
    build(3);
    read(2ULL << 30); // home = module 2, through 0 and 1
    eq.run();
    ASSERT_EQ(host.reads, 1);
    // Module 0 and 1 each forward the 1-flit request and the 5-flit
    // response; module 2 sees the request once and the response once
    // more when it leaves the vault.
    EXPECT_EQ(net->module(0).flitsRouted(), 6u);
    EXPECT_EQ(net->module(1).flitsRouted(), 6u);
    EXPECT_EQ(net->module(2).flitsRouted(), 6u);
}

TEST_F(ModuleRoutingTest, HomeModuleServicesDram)
{
    build(2);
    read(0);
    read(1ULL << 30);
    eq.run();
    EXPECT_EQ(net->module(0).dramAccesses(), 1u);
    EXPECT_EQ(net->module(1).dramAccesses(), 1u);
    EXPECT_EQ(net->module(0).dramReadsServiced(), 1u);
}

TEST_F(ModuleRoutingTest, DramReadsInFlightWindow)
{
    build(1);
    read(64);
    // Request still in the link; no DRAM read in flight yet.
    EXPECT_FALSE(net->module(0).dramReadsInFlight());
    eq.runUntil(ns(10)); // past delivery at 6.4 ns, before 30 ns access
    EXPECT_TRUE(net->module(0).dramReadsInFlight());
    eq.run();
    EXPECT_FALSE(net->module(0).dramReadsInFlight());
}

TEST_F(ModuleRoutingTest, StatsResetZeroesRouting)
{
    build(1);
    read(0);
    eq.run();
    net->resetStats();
    EXPECT_EQ(net->module(0).flitsRouted(), 0u);
    EXPECT_EQ(net->module(0).dramAccesses(), 0u);
}

} // namespace
} // namespace memnet
