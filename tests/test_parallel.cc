/**
 * @file
 * Tests for the parallel sweep engine: bit-identical results versus
 * serial execution, concurrent cache deduplication, collect mode, and
 * thread-safe logging under worker contention.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "memnet/experiment.hh"
#include "memnet/parallel.hh"
#include "memnet/report.hh"
#include "sim/log.hh"

namespace memnet
{
namespace
{

/** A small but heterogeneous sweep (3 workloads x 2 topologies). */
std::vector<SystemConfig>
sweepConfigs()
{
    std::vector<SystemConfig> v;
    for (const char *wl : {"mixA", "mixB", "mixE"}) {
        for (TopologyKind topo :
             {TopologyKind::Star, TopologyKind::DaisyChain}) {
            SystemConfig cfg;
            cfg.workload = wl;
            cfg.topology = topo;
            cfg.policy = Policy::Unaware;
            cfg.mechanism = BwMechanism::Vwl;
            cfg.warmup = us(10);
            cfg.measure = us(50);
            v.push_back(cfg);
        }
    }
    return v;
}

/**
 * Full bench JSON with wall_s (the one documented nondeterministic
 * field) masked out, so byte comparison checks everything else.
 */
std::string
jsonWithoutWallClock(const Runner &runner)
{
    std::ostringstream os;
    writeBenchResultsJson(os, "parallel_test", runner.results());
    return std::regex_replace(os.str(),
                              std::regex("\"wall_s\":[^,}]+"),
                              "\"wall_s\":0");
}

TEST(ResolveJobs, ClampsAndExpandsZero)
{
    EXPECT_GE(resolveJobs(0), 1);
    EXPECT_EQ(resolveJobs(-3), 1);
    EXPECT_EQ(resolveJobs(1), 1);
    EXPECT_EQ(resolveJobs(7), 7);
}

TEST(ParallelRunner, MatchesSerialByteForByte)
{
    const std::vector<SystemConfig> configs = sweepConfigs();

    Runner serial;
    for (const SystemConfig &cfg : configs)
        serial.get(cfg);

    Runner parallel;
    ParallelRunner(parallel, 8).run(configs);

    EXPECT_EQ(serial.runsExecuted(), parallel.runsExecuted());
    EXPECT_EQ(jsonWithoutWallClock(serial),
              jsonWithoutWallClock(parallel));
}

TEST(ParallelRunner, DeduplicatesRepeatedConfigs)
{
    SystemConfig cfg;
    cfg.workload = "mixE";
    cfg.warmup = us(10);
    cfg.measure = us(50);

    std::vector<SystemConfig> batch(16, cfg);
    Runner runner;
    ParallelRunner(runner, 8).run(batch);
    EXPECT_EQ(runner.runsExecuted(), 1);
    EXPECT_EQ(runner.results().size(), 1u);
}

TEST(Runner, ConcurrentSameConfigRunsOnce)
{
    SystemConfig cfg;
    cfg.workload = "mixA";
    cfg.warmup = us(10);
    cfg.measure = us(50);

    Runner runner;
    std::vector<const RunResult *> seen(8, nullptr);
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back(
            [&runner, &cfg, &seen, t] { seen[t] = &runner.get(cfg); });
    }
    for (std::thread &th : threads)
        th.join();

    EXPECT_EQ(runner.runsExecuted(), 1);
    for (const RunResult *r : seen)
        EXPECT_EQ(r, seen[0]); // all callers share the cached slot
}

TEST(Runner, CollectModeRecordsInsteadOfRunning)
{
    const std::vector<SystemConfig> configs = sweepConfigs();

    Runner runner;
    runner.beginCollect();
    for (const SystemConfig &cfg : configs) {
        const RunResult &r = runner.get(cfg);
        EXPECT_EQ(r.completedReads, 0u); // zeroed placeholder
    }
    runner.get(configs.front()); // duplicate: must not record twice
    const std::vector<SystemConfig> pending = runner.endCollect();

    EXPECT_EQ(pending.size(), configs.size());
    EXPECT_EQ(runner.runsExecuted(), 0);
    for (std::size_t i = 0; i < pending.size(); ++i)
        EXPECT_EQ(Runner::key(pending[i]), Runner::key(configs[i]));

    // Replays after the parallel pass hit the warm cache.
    ParallelRunner(runner, 4).run(pending);
    EXPECT_EQ(runner.runsExecuted(),
              static_cast<int>(configs.size()));
    const RunResult &real = runner.get(configs.front());
    EXPECT_GT(real.completedReads, 0u);
    EXPECT_EQ(runner.runsExecuted(),
              static_cast<int>(configs.size()));
}

TEST(Runner, CollectedConfigsAreSkippedWhenAlreadyCached)
{
    const std::vector<SystemConfig> configs = sweepConfigs();

    Runner runner;
    runner.get(configs.front()); // pre-warm one config

    runner.beginCollect();
    for (const SystemConfig &cfg : configs)
        runner.get(cfg);
    const std::vector<SystemConfig> pending = runner.endCollect();
    EXPECT_EQ(pending.size(), configs.size() - 1);
}

/** Scoped log capture for asserting on warn/inform output. */
class CapturedLog
{
  public:
    CapturedLog()
        : prev(setLogSink([this](LogLevel, const std::string &msg) {
              std::lock_guard<std::mutex> lock(mu);
              lines.push_back(msg);
          }))
    {
    }

    ~CapturedLog() { setLogSink(std::move(prev)); }

    bool
    contains(const std::string &needle) const
    {
        std::lock_guard<std::mutex> lock(mu);
        for (const std::string &l : lines)
            if (l.find(needle) != std::string::npos)
                return true;
        return false;
    }

  private:
    mutable std::mutex mu;
    std::vector<std::string> lines;
    LogSink prev;
};

/** RAII: memnet_fatal throws instead of exiting, for failure tests. */
struct ScopedThrowOnError
{
    ScopedThrowOnError() { detail::setThrowOnError(true); }
    ~ScopedThrowOnError() { detail::setThrowOnError(false); }
};

/** An invalid config: the unknown workload makes runSimulation fatal. */
SystemConfig
badConfig(std::uint64_t seed = 1)
{
    SystemConfig cfg;
    cfg.workload = "no-such-workload";
    cfg.warmup = us(10);
    cfg.measure = us(50);
    cfg.seed = seed;
    return cfg;
}

TEST(FailurePolicy, ParsesAndNames)
{
    FailurePolicy p = FailurePolicy::Abort;
    EXPECT_TRUE(parseFailurePolicy("isolate", &p));
    EXPECT_EQ(p, FailurePolicy::Isolate);
    EXPECT_TRUE(parseFailurePolicy("abort", &p));
    EXPECT_EQ(p, FailurePolicy::Abort);
    EXPECT_FALSE(parseFailurePolicy("explode", &p));
    EXPECT_STREQ(failurePolicyName(FailurePolicy::Abort), "abort");
    EXPECT_STREQ(failurePolicyName(FailurePolicy::Isolate), "isolate");
}

TEST(ParallelRunner, IsolatePolicyFinishesSweepAroundFailures)
{
    const ScopedThrowOnError guard;
    std::vector<SystemConfig> configs = sweepConfigs();
    configs.insert(configs.begin() + 2, badConfig());

    Runner runner;
    ParallelRunner engine(runner, 4);
    engine.setFailurePolicy(FailurePolicy::Isolate);
    EXPECT_NO_THROW(engine.run(configs));

    ASSERT_EQ(engine.failures().size(), 1u);
    const RunFailure &f = engine.failures()[0];
    EXPECT_EQ(f.key, Runner::key(badConfig()));
    EXPECT_FALSE(f.timeout);
    EXPECT_NE(f.message.find("no-such-workload"), std::string::npos)
        << f.message;

    // Every healthy config completed; the failed key is poisoned, not
    // cached, so partial results stay clean and replays don't re-run.
    EXPECT_EQ(runner.results().size(), configs.size() - 1);
    EXPECT_FALSE(runner.results().count(Runner::key(badConfig())));
    const int executed = runner.runsExecuted();
    const RunResult &placeholder = runner.get(badConfig());
    EXPECT_EQ(placeholder.completedReads, 0u);
    EXPECT_EQ(runner.runsExecuted(), executed);
}

TEST(ParallelRunner, IsolatePolicyWorksSingleThreaded)
{
    const ScopedThrowOnError guard;
    Runner runner;
    ParallelRunner engine(runner, 1);
    engine.setFailurePolicy(FailurePolicy::Isolate);
    SystemConfig good;
    good.warmup = us(10);
    good.measure = us(50);
    EXPECT_NO_THROW(engine.run({badConfig(), good}));
    EXPECT_EQ(engine.failures().size(), 1u);
    EXPECT_EQ(runner.results().size(), 1u);
}

TEST(ParallelRunner, AbortPolicyRethrowsAndLogsSuppressedFailures)
{
    const ScopedThrowOnError guard;
    const CapturedLog log;
    // Two distinct failing configs so one failure must be suppressed.
    std::vector<SystemConfig> configs = {badConfig(1), badConfig(2)};
    Runner runner;
    ParallelRunner engine(runner, 2);
    EXPECT_THROW(engine.run(configs), std::runtime_error);
    EXPECT_EQ(engine.failures().size(), 2u);
    EXPECT_TRUE(log.contains("1 additional failure(s) suppressed"));
    EXPECT_TRUE(log.contains("no-such-workload"));
}

TEST(ParallelRunner, WatchdogCancelsOverBudgetConfig)
{
    // A measure window far beyond what a tiny budget allows; the
    // watchdog must cancel it and record diagnostics.
    SystemConfig hog;
    hog.workload = "mixA";
    hog.warmup = us(10);
    hog.measure = us(400000);

    Runner runner;
    ParallelRunner engine(runner, 1);
    engine.setFailurePolicy(FailurePolicy::Isolate);
    engine.setConfigTimeout(0.05);
    engine.run({hog});

    ASSERT_EQ(engine.failures().size(), 1u);
    const RunFailure &f = engine.failures()[0];
    EXPECT_TRUE(f.timeout);
    EXPECT_GE(f.wallSeconds, 0.05);
    EXPECT_NE(f.message.find("cancelled by watchdog"),
              std::string::npos)
        << f.message;
    EXPECT_NE(f.message.find("fired="), std::string::npos) << f.message;
    EXPECT_TRUE(runner.results().empty());
}

TEST(ParallelRunner, WatchdogLeavesFastConfigsAlone)
{
    // Generous budget: the sweep completes normally and results match
    // a run with no watchdog at all, byte for byte.
    const std::vector<SystemConfig> configs = sweepConfigs();
    Runner plain;
    ParallelRunner(plain, 2).run(configs);

    Runner watched;
    ParallelRunner engine(watched, 2);
    engine.setConfigTimeout(300.0);
    engine.run(configs);

    EXPECT_TRUE(engine.failures().empty());
    EXPECT_EQ(jsonWithoutWallClock(plain), jsonWithoutWallClock(watched));
}

TEST(LogSink, ConcurrentWarningsStayIntact)
{
    std::vector<std::string> lines;
    LogSink prev = setLogSink(
        // Deliberately unsynchronized: delivery itself must serialize.
        [&lines](LogLevel, const std::string &msg) {
            lines.push_back(msg);
        });

    constexpr int kThreads = 8;
    constexpr int kPerThread = 200;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            for (int i = 0; i < kPerThread; ++i)
                memnet_warn("thread ", t, " line ", i, " end");
        });
    }
    for (std::thread &th : threads)
        th.join();
    setLogSink(std::move(prev));

    ASSERT_EQ(lines.size(),
              static_cast<std::size_t>(kThreads * kPerThread));
    const std::regex shape("thread [0-7] line [0-9]+ end");
    for (const std::string &l : lines)
        EXPECT_TRUE(std::regex_match(l, shape)) << "mangled: " << l;
}

} // namespace
} // namespace memnet
