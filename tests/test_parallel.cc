/**
 * @file
 * Tests for the parallel sweep engine: bit-identical results versus
 * serial execution, concurrent cache deduplication, collect mode, and
 * thread-safe logging under worker contention.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "memnet/experiment.hh"
#include "memnet/parallel.hh"
#include "memnet/report.hh"
#include "sim/log.hh"

namespace memnet
{
namespace
{

/** A small but heterogeneous sweep (3 workloads x 2 topologies). */
std::vector<SystemConfig>
sweepConfigs()
{
    std::vector<SystemConfig> v;
    for (const char *wl : {"mixA", "mixB", "mixE"}) {
        for (TopologyKind topo :
             {TopologyKind::Star, TopologyKind::DaisyChain}) {
            SystemConfig cfg;
            cfg.workload = wl;
            cfg.topology = topo;
            cfg.policy = Policy::Unaware;
            cfg.mechanism = BwMechanism::Vwl;
            cfg.warmup = us(10);
            cfg.measure = us(50);
            v.push_back(cfg);
        }
    }
    return v;
}

/**
 * Full bench JSON with wall_s (the one documented nondeterministic
 * field) masked out, so byte comparison checks everything else.
 */
std::string
jsonWithoutWallClock(const Runner &runner)
{
    std::ostringstream os;
    writeBenchResultsJson(os, "parallel_test", runner.results());
    return std::regex_replace(os.str(),
                              std::regex("\"wall_s\":[^,}]+"),
                              "\"wall_s\":0");
}

TEST(ResolveJobs, ClampsAndExpandsZero)
{
    EXPECT_GE(resolveJobs(0), 1);
    EXPECT_EQ(resolveJobs(-3), 1);
    EXPECT_EQ(resolveJobs(1), 1);
    EXPECT_EQ(resolveJobs(7), 7);
}

TEST(ParallelRunner, MatchesSerialByteForByte)
{
    const std::vector<SystemConfig> configs = sweepConfigs();

    Runner serial;
    for (const SystemConfig &cfg : configs)
        serial.get(cfg);

    Runner parallel;
    ParallelRunner(parallel, 8).run(configs);

    EXPECT_EQ(serial.runsExecuted(), parallel.runsExecuted());
    EXPECT_EQ(jsonWithoutWallClock(serial),
              jsonWithoutWallClock(parallel));
}

TEST(ParallelRunner, DeduplicatesRepeatedConfigs)
{
    SystemConfig cfg;
    cfg.workload = "mixE";
    cfg.warmup = us(10);
    cfg.measure = us(50);

    std::vector<SystemConfig> batch(16, cfg);
    Runner runner;
    ParallelRunner(runner, 8).run(batch);
    EXPECT_EQ(runner.runsExecuted(), 1);
    EXPECT_EQ(runner.results().size(), 1u);
}

TEST(Runner, ConcurrentSameConfigRunsOnce)
{
    SystemConfig cfg;
    cfg.workload = "mixA";
    cfg.warmup = us(10);
    cfg.measure = us(50);

    Runner runner;
    std::vector<const RunResult *> seen(8, nullptr);
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back(
            [&runner, &cfg, &seen, t] { seen[t] = &runner.get(cfg); });
    }
    for (std::thread &th : threads)
        th.join();

    EXPECT_EQ(runner.runsExecuted(), 1);
    for (const RunResult *r : seen)
        EXPECT_EQ(r, seen[0]); // all callers share the cached slot
}

TEST(Runner, CollectModeRecordsInsteadOfRunning)
{
    const std::vector<SystemConfig> configs = sweepConfigs();

    Runner runner;
    runner.beginCollect();
    for (const SystemConfig &cfg : configs) {
        const RunResult &r = runner.get(cfg);
        EXPECT_EQ(r.completedReads, 0u); // zeroed placeholder
    }
    runner.get(configs.front()); // duplicate: must not record twice
    const std::vector<SystemConfig> pending = runner.endCollect();

    EXPECT_EQ(pending.size(), configs.size());
    EXPECT_EQ(runner.runsExecuted(), 0);
    for (std::size_t i = 0; i < pending.size(); ++i)
        EXPECT_EQ(Runner::key(pending[i]), Runner::key(configs[i]));

    // Replays after the parallel pass hit the warm cache.
    ParallelRunner(runner, 4).run(pending);
    EXPECT_EQ(runner.runsExecuted(),
              static_cast<int>(configs.size()));
    const RunResult &real = runner.get(configs.front());
    EXPECT_GT(real.completedReads, 0u);
    EXPECT_EQ(runner.runsExecuted(),
              static_cast<int>(configs.size()));
}

TEST(Runner, CollectedConfigsAreSkippedWhenAlreadyCached)
{
    const std::vector<SystemConfig> configs = sweepConfigs();

    Runner runner;
    runner.get(configs.front()); // pre-warm one config

    runner.beginCollect();
    for (const SystemConfig &cfg : configs)
        runner.get(cfg);
    const std::vector<SystemConfig> pending = runner.endCollect();
    EXPECT_EQ(pending.size(), configs.size() - 1);
}

TEST(LogSink, ConcurrentWarningsStayIntact)
{
    std::vector<std::string> lines;
    LogSink prev = setLogSink(
        // Deliberately unsynchronized: delivery itself must serialize.
        [&lines](LogLevel, const std::string &msg) {
            lines.push_back(msg);
        });

    constexpr int kThreads = 8;
    constexpr int kPerThread = 200;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            for (int i = 0; i < kPerThread; ++i)
                memnet_warn("thread ", t, " line ", i, " end");
        });
    }
    for (std::thread &th : threads)
        th.join();
    setLogSink(std::move(prev));

    ASSERT_EQ(lines.size(),
              static_cast<std::size_t>(kThreads * kPerThread));
    const std::regex shape("thread [0-7] line [0-9]+ end");
    for (const std::string &l : lines)
        EXPECT_TRUE(std::regex_match(l, shape)) << "mangled: " << l;
}

} // namespace
} // namespace memnet
