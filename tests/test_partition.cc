/**
 * @file
 * Partitioned parallel event kernel (sim/partition.hh).
 *
 *  - sim-layer stress: a randomized ring of partitions exchanging
 *    messages through the runner matches a serial reference event
 *    queue tick-for-tick, with and without a sync-point grid;
 *  - the deterministic Barrier mode is bit-identical to the serial
 *    kernel across topologies x policies, under fault plans, with
 *    auditing on, and with the latency observatory on or off;
 *  - multi-channel partitioned runs match serial multi-channel runs;
 *  - Lax mode is run-to-run deterministic;
 *  - a cooperative cancel flag (the --config-timeout watchdog) stops
 *    every partition worker.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <tuple>
#include <vector>

#include "audit/differential.hh"
#include "memnet/multichannel.hh"
#include "memnet/simulator.hh"
#include "sim/cancel.hh"
#include "sim/partition.hh"

namespace memnet
{
namespace
{

// ---------------------------------------------------------------------
// Sim-layer stress: a ring of P nodes. Node r fires on ticks congruent
// to r (mod P) with a pseudo-random cadence and sends each firing's
// sequence number to node (r+1) % P with a fixed latency that is a
// multiple of P — so no two nodes ever act at the same tick and the
// serial reference order is unambiguous.
// ---------------------------------------------------------------------

using ToyLog = std::vector<std::tuple<Tick, int, std::uint64_t>>;

constexpr int kRing = 3;
constexpr Tick kRingLatency = 102; // multiple of kRing
constexpr Tick kToyEnd = 200000;

/** Deterministic cadence: xorshift per node. */
struct ToyRng
{
    std::uint64_t s;
    std::uint64_t
    next()
    {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        return s;
    }
};

class ToyReceiver
{
  public:
    ToyReceiver(EventQueue &eq, int rank, ToyLog &log)
        : eq(eq), rank(rank), log(log)
    {
    }

    void
    push(std::uint64_t value, const EventKey &key)
    {
        RecvEvent *ev;
        if (free_.empty()) {
            storage_.push_back(std::make_unique<RecvEvent>(this));
            ev = storage_.back().get();
        } else {
            ev = free_.back();
            free_.pop_back();
        }
        ev->value = value;
        eq.scheduleWithKey(ev, key);
    }

  private:
    struct RecvEvent : Event
    {
        explicit RecvEvent(ToyReceiver *o) : owner(o) {}
        void
        fire() override
        {
            owner->free_.push_back(this);
            owner->log.emplace_back(owner->eq.now(), owner->rank,
                                    value);
        }
        ToyReceiver *owner;
        std::uint64_t value = 0;
    };

    EventQueue &eq;
    const int rank;
    ToyLog &log;
    std::vector<std::unique_ptr<RecvEvent>> storage_;
    std::vector<RecvEvent *> free_;
};

/** Self-rescheduling sender; Send is how a message leaves the node. */
class ToySender : public Event
{
  public:
    using Send = std::function<void(std::uint64_t, const EventKey &)>;

    ToySender(EventQueue &eq, int rank, Send send)
        : eq(eq), rng{0x9e3779b9u * static_cast<unsigned>(rank + 1)},
          send(std::move(send))
    {
        eq.schedule(this, static_cast<Tick>(rank));
    }

    void
    fire() override
    {
        EventKey key;
        key.when = eq.now() + kRingLatency;
        key.sched = eq.now();
        key.parent = eq.currentParentSched();
        send(seq++, key);
        // Cadence in [kRing, 40*kRing], always a multiple of kRing so
        // the node keeps its tick residue.
        const Tick step =
            static_cast<Tick>(1 + rng.next() % 40) * kRing;
        if (eq.now() + step <= kToyEnd)
            eq.schedule(this, eq.now() + step);
    }

  private:
    EventQueue &eq;
    ToyRng rng;
    Send send;
    std::uint64_t seq = 0;
};

/** Serial reference: the whole ring on one queue. */
ToyLog
runToySerial()
{
    ToyLog log;
    EventQueue eq;
    std::vector<std::unique_ptr<ToyReceiver>> recv;
    for (int r = 0; r < kRing; ++r)
        recv.push_back(std::make_unique<ToyReceiver>(eq, r, log));
    std::vector<std::unique_ptr<ToySender>> send;
    for (int r = 0; r < kRing; ++r) {
        ToyReceiver *dst = recv[(r + 1) % kRing].get();
        send.push_back(std::make_unique<ToySender>(
            eq, r, [dst](std::uint64_t v, const EventKey &k) {
                dst->push(v, k);
            }));
    }
    eq.runUntil(kToyEnd);
    return log;
}

/** Partitioned: one queue per node, coupled through the runner. */
ToyLog
runToyPartitioned(PartitionSync sync, Tick grid, Tick laxWindow)
{
    // Per-rank logs merged by (tick, rank) afterwards: ranks never act
    // at the same tick, so the merge order is total and identical to
    // the serial log's.
    std::vector<ToyLog> logs(kRing);
    std::vector<std::unique_ptr<EventQueue>> eqs;
    std::vector<EventQueue *> queues;
    for (int r = 0; r < kRing; ++r) {
        eqs.push_back(std::make_unique<EventQueue>());
        queues.push_back(eqs.back().get());
    }
    std::vector<std::unique_ptr<ToyReceiver>> recv;
    for (int r = 0; r < kRing; ++r)
        recv.push_back(
            std::make_unique<ToyReceiver>(*eqs[r], r, logs[r]));

    std::vector<Tick> look(kRing * kRing, kTickMax);
    for (int r = 0; r < kRing; ++r) {
        look[r * kRing + r] = 0;
        look[r * kRing + (r + 1) % kRing] = kRingLatency;
    }
    PartitionRunner runner(
        queues, std::move(look),
        [&recv](int dst, BoundaryMessage &m) {
            recv[dst]->push(
                reinterpret_cast<std::uintptr_t>(m.payload), m.key);
        },
        sync, laxWindow);

    std::vector<std::unique_ptr<ToySender>> send;
    for (int r = 0; r < kRing; ++r) {
        MailboxMatrix &mail = runner.mail();
        const int dst = (r + 1) % kRing;
        send.push_back(std::make_unique<ToySender>(
            *eqs[r], r,
            [&mail, r, dst](std::uint64_t v, const EventKey &k) {
                BoundaryMessage m;
                m.key = k;
                m.payload = reinterpret_cast<void *>(
                    static_cast<std::uintptr_t>(v));
                mail.send(r, dst, m);
            }));
    }
    runner.runUntil(kToyEnd, grid);

    ToyLog merged;
    std::vector<std::size_t> cursor(kRing, 0);
    for (;;) {
        int best = -1;
        for (int r = 0; r < kRing; ++r) {
            if (cursor[r] >= logs[r].size())
                continue;
            if (best < 0 || std::get<0>(logs[r][cursor[r]]) <
                                std::get<0>(logs[best][cursor[best]]))
                best = r;
        }
        if (best < 0)
            break;
        merged.push_back(logs[best][cursor[best]++]);
    }
    return merged;
}

TEST(PartitionStress, RingMatchesSerialReference)
{
    const ToyLog serial = runToySerial();
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial,
              runToyPartitioned(PartitionSync::Barrier, 0, us(1)));
}

TEST(PartitionStress, SyncPointGridDoesNotChangeResults)
{
    // Sync points (merged tick-steps) are a synchronization artifact;
    // an arbitrary grid must not change what fires when.
    const ToyLog serial = runToySerial();
    EXPECT_EQ(serial,
              runToyPartitioned(PartitionSync::Barrier, 7770, us(1)));
}

TEST(PartitionStress, LaxModeIsRunToRunDeterministic)
{
    const ToyLog a =
        runToyPartitioned(PartitionSync::Lax, 0, Tick{5000});
    const ToyLog b =
        runToyPartitioned(PartitionSync::Lax, 0, Tick{5000});
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(Partition, MailboxStampsDeterministicRemoteCounters)
{
    MailboxMatrix mail(2);
    BoundaryMessage m;
    m.key = EventKey{100, 50, 10, 0};
    mail.send(1, 0, m);
    mail.send(1, 0, m);
    std::vector<BoundaryMessage> out;
    mail.drain(0, out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].key.ctr,
              EventKey::kRemoteCtrBit | (1ULL << 48) | 0);
    EXPECT_EQ(out[1].key.ctr,
              EventKey::kRemoteCtrBit | (1ULL << 48) | 1);
    // Remote ties sort after any local event's counter.
    const EventKey local{100, 50, 10, 123456};
    EXPECT_TRUE(local < out[0].key);
    out.clear();
    mail.drain(0, out);
    EXPECT_TRUE(out.empty());
}

TEST(Partition, SyncModeNamesRoundTrip)
{
    EXPECT_STREQ(partitionSyncName(PartitionSync::Barrier), "barrier");
    EXPECT_STREQ(partitionSyncName(PartitionSync::Lax), "lax");
    PartitionSync s = PartitionSync::Lax;
    EXPECT_TRUE(parsePartitionSync("barrier", &s));
    EXPECT_EQ(s, PartitionSync::Barrier);
    EXPECT_TRUE(parsePartitionSync("lax", &s));
    EXPECT_EQ(s, PartitionSync::Lax);
    EXPECT_FALSE(parsePartitionSync("bogus", &s));
}

// ---------------------------------------------------------------------
// Full-simulator differential: partitioned Barrier == serial.
// ---------------------------------------------------------------------

SystemConfig
shortConfig(TopologyKind topo, Policy p)
{
    SystemConfig cfg;
    cfg.workload = "mixE";
    cfg.topology = topo;
    cfg.policy = p;
    cfg.mechanism = p == Policy::FullPower ? BwMechanism::None
                                           : BwMechanism::Vwl;
    cfg.roo = p != Policy::FullPower;
    cfg.warmup = us(50);
    cfg.measure = us(150);
    cfg.epochLen = us(30);
    if (p == Policy::StaticTaper)
        cfg.interleavePages = true;
    return cfg;
}

constexpr TopologyKind kTopologies[] = {
    TopologyKind::DaisyChain, TopologyKind::TernaryTree,
    TopologyKind::Star, TopologyKind::DdrxLike};
constexpr Policy kPolicies[] = {Policy::FullPower, Policy::Unaware,
                                Policy::Aware, Policy::StaticTaper};

TEST(PartitionDifferential, BarrierModeEqualsSerialEverywhere)
{
    // The tentpole claim: the deterministic partitioned kernel
    // reproduces the serial kernel bit-for-bit on every
    // simulation-determined output, for every topology x policy pair.
    for (TopologyKind t : kTopologies) {
        for (Policy p : kPolicies) {
            const SystemConfig serial = shortConfig(t, p);
            SystemConfig part = serial;
            part.partitions = 2;

            const RunResult rs = runSimulation(serial);
            const RunResult rp = runSimulation(part);
            const auto diffs = audit::diffRunResults(rs, rp);
            EXPECT_TRUE(diffs.empty())
                << topologyName(t) << "/" << policyName(p) << "\n"
                << audit::describeDiffs(diffs);
            EXPECT_EQ(rp.profile.partitions, 2);
            ASSERT_EQ(rp.profile.partitionLanes.size(), 2u);
            EXPECT_GT(rp.profile.partitionLanes[0].windows, 0u);
            EXPECT_GT(rp.profile.partitionLanes[1].eventsFired, 0u);
            EXPECT_EQ(rs.profile.partitions, 1);
            EXPECT_TRUE(rs.profile.partitionLanes.empty());
        }
    }
}

TEST(PartitionDifferential, ExcessPartitionsClampToChannels)
{
    // A single-channel run has one channel to offload: partitions=4
    // must behave exactly like partitions=2 (and match serial).
    const SystemConfig serial =
        shortConfig(TopologyKind::TernaryTree, Policy::Aware);
    SystemConfig part = serial;
    part.partitions = 4;
    const RunResult rp = runSimulation(part);
    EXPECT_EQ(rp.profile.partitions, 2);
    const auto diffs =
        audit::diffRunResults(runSimulation(serial), rp);
    EXPECT_TRUE(diffs.empty()) << audit::describeDiffs(diffs);
}

TEST(PartitionDifferential, BarrierModeEqualsSerialUnderFaults)
{
    SystemConfig serial = shortConfig(TopologyKind::Star,
                                      Policy::Aware);
    FaultSpec retrain;
    retrain.kind = FaultKind::LinkRetrain;
    retrain.at = us(80);
    retrain.link = 0;
    retrain.durationPs = us(20);
    serial.faults.events.push_back(retrain);
    FaultSpec burst;
    burst.kind = FaultKind::ErrorBurst;
    burst.at = us(120);
    burst.link = 1;
    burst.flitErrorRate = 1e-4;
    burst.durationPs = us(40);
    serial.faults.events.push_back(burst);

    SystemConfig part = serial;
    part.partitions = 2;
    const RunResult rs = runSimulation(serial);
    const RunResult rp = runSimulation(part);
    EXPECT_TRUE(rs.reliability.any());
    const auto diffs = audit::diffRunResults(rs, rp);
    EXPECT_TRUE(diffs.empty()) << audit::describeDiffs(diffs);
}

TEST(PartitionDifferential, BarrierModeEqualsSerialWithAuditOn)
{
    SystemConfig serial = shortConfig(TopologyKind::DaisyChain,
                                      Policy::Unaware);
    serial.audit = true;
    SystemConfig part = serial;
    part.partitions = 2;
    const RunResult rs = runSimulation(serial);
    const RunResult rp = runSimulation(part);
    EXPECT_GT(rp.profile.auditChecksRun, 0u);
    const auto diffs = audit::diffRunResults(rs, rp);
    EXPECT_TRUE(diffs.empty()) << audit::describeDiffs(diffs);
}

TEST(PartitionDifferential, LatencyObservatoryMatchesSerial)
{
    // The observatory must survive the boundary split: the shadow
    // replay on the channel side and the ingress completion on the
    // processor side reproduce the serial decomposition exactly.
    const SystemConfig serial =
        shortConfig(TopologyKind::Star, Policy::Aware);
    SystemConfig part = serial;
    part.partitions = 2;
    const RunResult rs = runSimulation(serial);
    const RunResult rp = runSimulation(part);
    ASSERT_TRUE(rs.latency.enabled);
    ASSERT_TRUE(rp.latency.enabled);
    EXPECT_EQ(rs.latency.endToEnd.samples, rp.latency.endToEnd.samples);
    EXPECT_EQ(rs.latency.endToEnd.p50Ps, rp.latency.endToEnd.p50Ps);
    EXPECT_EQ(rs.latency.endToEnd.p99Ps, rp.latency.endToEnd.p99Ps);
    EXPECT_EQ(rs.latency.serialization.p50Ps,
              rp.latency.serialization.p50Ps);
    EXPECT_EQ(rs.latency.dram.p99Ps, rp.latency.dram.p99Ps);
}

TEST(PartitionDifferential, EnergyObservatoryMatchesSerial)
{
    // Energy attribution must survive the partition split exactly:
    // every link's events run on its home partition, so the cause
    // buckets accrue in the same per-link order as the serial kernel
    // and the ledger (and occupancy sketches) are bit-identical.
    const SystemConfig serial =
        shortConfig(TopologyKind::Star, Policy::Aware);
    SystemConfig part = serial;
    part.partitions = 2;
    const RunResult rs = runSimulation(serial);
    const RunResult rp = runSimulation(part);
    ASSERT_TRUE(rs.energy.enabled);
    ASSERT_TRUE(rp.energy.enabled);
    const EnergyAttribution &as = rs.energy.attribution;
    const EnergyAttribution &ap = rp.energy.attribution;
    EXPECT_EQ(as.txJ, ap.txJ);
    EXPECT_EQ(as.retrainJ, ap.retrainJ);
    EXPECT_EQ(as.idleFloorJ(), ap.idleFloorJ());
    EXPECT_EQ(as.sleepJ, ap.sleepJ);
    EXPECT_EQ(as.wakeJ, ap.wakeJ);
    EXPECT_EQ(as.serdesLeakJ, ap.serdesLeakJ);
    EXPECT_EQ(as.routerJ, ap.routerJ);
    EXPECT_EQ(as.dramLeakJ, ap.dramLeakJ);
    EXPECT_EQ(as.dramDynJ, ap.dramDynJ);
    EXPECT_EQ(as.idleIoJ, ap.idleIoJ);
    EXPECT_EQ(as.activeIoJ, ap.activeIoJ);
    EXPECT_EQ(rs.energy.occupancy.samples, rp.energy.occupancy.samples);
    EXPECT_EQ(rs.energy.occupancy.sumPs, rp.energy.occupancy.sumPs);
    EXPECT_EQ(rs.energy.occupancy.p99Ps, rp.energy.occupancy.p99Ps);
    EXPECT_EQ(rs.energy.utilization.samples,
              rp.energy.utilization.samples);
    EXPECT_EQ(rs.energy.utilization.p50Ps,
              rp.energy.utilization.p50Ps);
}

TEST(PartitionDifferential, MultiChannelEqualsSerialMultiChannel)
{
    for (Policy p : {Policy::FullPower, Policy::Aware}) {
        MultiChannelConfig serial;
        serial.base = shortConfig(TopologyKind::TernaryTree, p);
        serial.channels = 3;
        serial.spread = ChannelSpread::InterleaveLines;
        MultiChannelConfig part = serial;
        part.base.partitions = 4; // one partition per channel

        const MultiChannelResult ms = runMultiChannel(serial);
        const MultiChannelResult mp = runMultiChannel(part);
        EXPECT_EQ(ms.totalPowerW, mp.totalPowerW) << policyName(p);
        EXPECT_EQ(ms.readsPerSec, mp.readsPerSec) << policyName(p);
        EXPECT_EQ(ms.idleIoFrac, mp.idleIoFrac) << policyName(p);
        ASSERT_EQ(ms.channelUtil.size(), mp.channelUtil.size());
        for (std::size_t c = 0; c < ms.channelUtil.size(); ++c)
            EXPECT_EQ(ms.channelUtil[c], mp.channelUtil[c])
                << policyName(p) << " channel " << c;
        ASSERT_TRUE(ms.latency.enabled && mp.latency.enabled);
        EXPECT_EQ(ms.latency.endToEnd.samples,
                  mp.latency.endToEnd.samples);
        EXPECT_EQ(ms.latency.endToEnd.p99Ps,
                  mp.latency.endToEnd.p99Ps);
        ASSERT_TRUE(ms.energy.enabled && mp.energy.enabled);
        EXPECT_EQ(ms.energy.attribution.totalJ(),
                  mp.energy.attribution.totalJ());
        EXPECT_EQ(ms.energy.attribution.txJ, mp.energy.attribution.txJ);
        EXPECT_EQ(ms.energy.occupancy.samples,
                  mp.energy.occupancy.samples);
    }
}

TEST(PartitionDifferential, ChannelsSharingAPartitionMatchSerial)
{
    // More channels than partitions: channels share worker queues
    // round-robin and must still match the serial run exactly.
    MultiChannelConfig serial;
    serial.base = shortConfig(TopologyKind::Star, Policy::Unaware);
    serial.channels = 4;
    MultiChannelConfig part = serial;
    part.base.partitions = 3; // 4 channels on 2 channel partitions

    const MultiChannelResult ms = runMultiChannel(serial);
    const MultiChannelResult mp = runMultiChannel(part);
    EXPECT_EQ(ms.totalPowerW, mp.totalPowerW);
    EXPECT_EQ(ms.readsPerSec, mp.readsPerSec);
    for (std::size_t c = 0; c < ms.channelUtil.size(); ++c)
        EXPECT_EQ(ms.channelUtil[c], mp.channelUtil[c]);
}

TEST(PartitionLax, DeterministicAcrossRunsAndCloseToSerial)
{
    SystemConfig part = shortConfig(TopologyKind::Star, Policy::Aware);
    part.partitions = 2;
    part.partitionSync = PartitionSync::Lax;
    // Cross-partition deliveries land at window boundaries, so the
    // window sets the latency-error floor: keep it on the scale of a
    // read round trip and throughput stays close; a sweep-sized window
    // (microseconds) would stretch every round trip to ~2 windows.
    part.laxWindowPs = 20000; // 20 ns

    const RunResult a = runSimulation(part);
    const RunResult b = runSimulation(part);
    EXPECT_TRUE(a.profile.laxSync);
    EXPECT_GT(a.completedReads, 0u);
    const auto diffs = audit::diffRunResults(a, b);
    EXPECT_TRUE(diffs.empty()) << audit::describeDiffs(diffs);

    // Lax trades bit-identity for fewer barriers; with a round-trip-
    // scale window the throughput stays within tens of percent of the
    // serial run (the error is bounded by window / round trip).
    const RunResult serial =
        runSimulation(shortConfig(TopologyKind::Star, Policy::Aware));
    EXPECT_NEAR(a.readsPerSec, serial.readsPerSec,
                0.30 * serial.readsPerSec);
}

TEST(PartitionCancel, WatchdogFlagStopsAllWorkers)
{
    // The --config-timeout watchdog sets one cooperative flag; the
    // runner installs it in every partition worker, so a partitioned
    // run must abort promptly and rethrow CancelledError on the
    // calling thread.
    SystemConfig part = shortConfig(TopologyKind::Star, Policy::Aware);
    part.partitions = 2;
    std::atomic<bool> stop{true};
    ScopedCancelFlag scoped(&stop);
    EXPECT_THROW(runSimulation(part), CancelledError);
}

} // namespace
} // namespace memnet
