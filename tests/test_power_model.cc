/**
 * @file
 * Unit tests for the [12]-derived HMC power model.
 */

#include <gtest/gtest.h>

#include "power/hmc_power_model.hh"
#include "power/power_breakdown.hh"

namespace memnet
{
namespace
{

TEST(HmcPowerModel, HighRadixPeakSplitsPerPaper)
{
    HmcPowerModel pm;
    const HmcPowerParams &p = pm.params(Radix::High);
    EXPECT_DOUBLE_EQ(p.peakTotalW, 13.4);
    EXPECT_NEAR(p.peakDramW, 13.4 * 0.43, 1e-9);
    EXPECT_NEAR(p.peakLogicW, 13.4 * 0.22, 1e-9);
    EXPECT_NEAR(p.peakIoW, 13.4 * 0.35, 1e-9);
    EXPECT_NEAR(p.peakDramW + p.peakLogicW + p.peakIoW, 13.4, 1e-9);
}

TEST(HmcPowerModel, LowRadixIsHalfOfHighRadix)
{
    HmcPowerModel pm;
    const HmcPowerParams &hi = pm.params(Radix::High);
    const HmcPowerParams &lo = pm.params(Radix::Low);
    EXPECT_NEAR(lo.peakTotalW, hi.peakTotalW / 2, 1e-9);
    EXPECT_NEAR(lo.peakIoW, hi.peakIoW / 2, 1e-9);
    EXPECT_NEAR(lo.idleDramW, hi.idleDramW / 2, 1e-9);
}

TEST(HmcPowerModel, IdleFractionsPerPaper)
{
    HmcPowerModel pm;
    const HmcPowerParams &p = pm.params(Radix::High);
    EXPECT_NEAR(p.idleDramW, 0.10 * p.peakDramW, 1e-9);
    EXPECT_NEAR(p.idleLogicW, 0.25 * p.peakLogicW, 1e-9);
}

TEST(HmcPowerModel, LinkEndPowerEqualAcrossRadix)
{
    // 35% of 13.4 W over 8 ends == 35% of 6.7 W over 4 ends.
    HmcPowerModel pm;
    EXPECT_NEAR(pm.params(Radix::High).linkEndW,
                pm.params(Radix::Low).linkEndW, 1e-9);
    EXPECT_NEAR(pm.params(Radix::High).linkEndW, 0.35 * 13.4 / 8.0,
                1e-9);
}

TEST(HmcPowerModel, FullLinkPowerIsTwoEnds)
{
    HmcPowerModel pm;
    EXPECT_EQ(pm.attribution(), IoAttribution::PerEnd);
    EXPECT_NEAR(pm.linkFullPowerW(),
                2.0 * pm.params(Radix::High).linkEndW, 1e-12);
}

TEST(HmcPowerModel, PerLinkAttributionHalvesLinkPower)
{
    HmcPowerModel per_end(IoAttribution::PerEnd);
    HmcPowerModel per_link(IoAttribution::PerLink);
    EXPECT_NEAR(per_link.linkFullPowerW(),
                per_end.linkFullPowerW() / 2.0, 1e-12);
    // Module-level parameters are unaffected by the attribution.
    EXPECT_NEAR(per_link.params(Radix::High).peakIoW,
                per_end.params(Radix::High).peakIoW, 1e-12);
}

TEST(HmcPowerModel, DramDynamicEnergyRecoversPeakPower)
{
    // Accessing at the peak internal rate must burn exactly the
    // non-leakage DRAM power.
    HmcPowerModel pm;
    const HmcPowerParams &p = pm.params(Radix::High);
    const double peak_rate =
        HmcPowerModel::kDramPeakBytesPerSec / 64.0; // accesses/s
    EXPECT_NEAR(p.dramAccessJ * peak_rate + p.idleDramW, p.peakDramW,
                1e-9);
}

TEST(HmcPowerModel, LogicDynamicEnergyRecoversPeakPower)
{
    HmcPowerModel pm;
    const HmcPowerParams &p = pm.params(Radix::High);
    const double peak_flits = HmcPowerModel::kPeakFlitsPerSecPerEnd * 8;
    EXPECT_NEAR(p.flitHopJ * peak_flits + p.idleLogicW, p.peakLogicW,
                1e-9);
}

TEST(PowerBreakdown, EnergyToPowerConversion)
{
    EnergyBreakdown e;
    e.idleIoJ = 2.0;
    e.activeIoJ = 1.0;
    e.logicLeakJ = 0.5;
    const PowerBreakdown p = PowerBreakdown::fromEnergy(e, 2.0);
    EXPECT_DOUBLE_EQ(p.idleIoW, 1.0);
    EXPECT_DOUBLE_EQ(p.activeIoW, 0.5);
    EXPECT_DOUBLE_EQ(p.logicLeakW, 0.25);
    EXPECT_DOUBLE_EQ(p.totalW(), 1.75);
    EXPECT_DOUBLE_EQ(p.ioW(), 1.5);
}

TEST(PowerBreakdown, ScaledDividesUniformly)
{
    PowerBreakdown p;
    p.idleIoW = 4.0;
    p.dramDynW = 2.0;
    const PowerBreakdown s = p.scaled(0.5);
    EXPECT_DOUBLE_EQ(s.idleIoW, 2.0);
    EXPECT_DOUBLE_EQ(s.dramDynW, 1.0);
}

TEST(EnergyBreakdown, AccumulateAndTotal)
{
    EnergyBreakdown a, b;
    a.idleIoJ = 1;
    b.idleIoJ = 2;
    b.dramLeakJ = 3;
    a += b;
    EXPECT_DOUBLE_EQ(a.idleIoJ, 3.0);
    EXPECT_DOUBLE_EQ(a.totalJ(), 6.0);
}

TEST(PowerBreakdown, ZeroWindowYieldsZeroPower)
{
    EnergyBreakdown e;
    e.idleIoJ = 5.0;
    const PowerBreakdown p = PowerBreakdown::fromEnergy(e, 0.0);
    EXPECT_DOUBLE_EQ(p.totalW(), 0.0);
}

} // namespace
} // namespace memnet
