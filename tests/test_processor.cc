/**
 * @file
 * Integration tests for the closed-loop processor front end: rate
 * calibration, read fraction, outstanding-request bounds.
 */

#include <gtest/gtest.h>

#include <memory>

#include "net/network.hh"
#include "sim/event_queue.hh"
#include "workload/processor.hh"

namespace memnet
{
namespace
{

class ProcessorTest : public ::testing::Test
{
  protected:
    void
    build(const std::string &workload, int n_modules_chunk_gb = 4)
    {
        const WorkloadProfile &w = workloadByName(workload);
        const std::uint64_t chunk =
            static_cast<std::uint64_t>(n_modules_chunk_gb) << 30;
        Topology topo =
            Topology::build(TopologyKind::Star, w.modulesFor(chunk));
        RooConfig roo;
        AddressMap amap;
        amap.chunkBytes = chunk;
        net = std::make_unique<Network>(eq, topo, dram,
                                        BwMechanism::None, roo, pm,
                                        amap);
        ProcessorParams pp;
        pp.seed = 7;
        proc = std::make_unique<Processor>(eq, *net, w, pp);
    }

    EventQueue eq;
    DramParams dram;
    HmcPowerModel pm;
    std::unique_ptr<Network> net;
    std::unique_ptr<Processor> proc;
};

TEST_F(ProcessorTest, TargetRateMatchesProfileCalibration)
{
    build("lu.D");
    const WorkloadProfile &w = workloadByName("lu.D");
    const double r = w.readFraction;
    const double bytes = 16 * r + 80 * (1 - r) + 80 * r;
    EXPECT_NEAR(proc->targetAccessRate(),
                w.channelUtil * 2 * Link::fullBytesPerSec() / bytes,
                1.0);
}

TEST_F(ProcessorTest, AchievedChannelUtilNearTarget)
{
    build("lu.D"); // high duty -> tight calibration
    proc->start(0);
    eq.runUntil(us(100));
    net->resetStats();
    proc->resetStats();
    eq.runUntil(us(600));
    const double secs = toSeconds(us(500));
    const double util = 0.5 * (net->requestLink(0).utilization(secs) +
                               net->responseLink(0).utilization(secs));
    EXPECT_NEAR(util, workloadByName("lu.D").channelUtil, 0.10);
}

TEST_F(ProcessorTest, ReadFractionApproximatelyHonored)
{
    build("mixB");
    proc->start(0);
    eq.runUntil(us(500));
    const double reads = proc->completedReads();
    const double writes = proc->retiredWrites();
    ASSERT_GT(reads + writes, 1000.0);
    EXPECT_NEAR(reads / (reads + writes),
                workloadByName("mixB").readFraction, 0.05);
}

TEST_F(ProcessorTest, LowUtilWorkloadIssuesSparsely)
{
    build("sp.D");
    proc->start(0);
    eq.runUntil(us(200));
    net->resetStats();
    proc->resetStats();
    eq.runUntil(us(1200));
    const double secs = toSeconds(us(1000));
    const double util = 0.5 * (net->requestLink(0).utilization(secs) +
                               net->responseLink(0).utilization(secs));
    // sp.D targets 10%: allow generous slack but demand clear sparsity.
    EXPECT_LT(util, 0.2);
    EXPECT_GT(util, 0.02);
}

TEST_F(ProcessorTest, CompletedReadsHaveSaneLatency)
{
    build("ua.D");
    proc->start(0);
    eq.runUntil(us(300));
    ASSERT_GT(proc->completedReads(), 100u);
    // Round trip through a couple of hops plus 30 ns DRAM: tens of ns
    // at least, microseconds at most in an uncongested network.
    EXPECT_GT(proc->avgReadLatencyNs(), 40.0);
    EXPECT_LT(proc->avgReadLatencyNs(), 5000.0);
}

TEST_F(ProcessorTest, DeterministicAcrossRuns)
{
    build("mixC");
    proc->start(0);
    eq.runUntil(us(300));
    const std::uint64_t reads1 = proc->completedReads();

    // Rebuild from scratch with the same seed: identical counts.
    EventQueue eq2;
    const WorkloadProfile &w = workloadByName("mixC");
    Topology topo =
        Topology::build(TopologyKind::Star, w.modulesFor(4ULL << 30));
    RooConfig roo;
    AddressMap amap;
    amap.chunkBytes = 4ULL << 30;
    Network net2(eq2, topo, dram, BwMechanism::None, roo, pm, amap);
    ProcessorParams pp;
    pp.seed = 7;
    Processor proc2(eq2, net2, w, pp);
    proc2.start(0);
    eq2.runUntil(us(300));
    EXPECT_EQ(proc2.completedReads(), reads1);
}

TEST_F(ProcessorTest, BurstinessCreatesIdleIntervals)
{
    build("sp.D"); // duty 0.3, long idle gaps
    struct IdleCounter : public LinkObserver
    {
        int longIdles = 0;
        void
        onIdleEnd(Link &, Tick start, Tick now) override
        {
            if (now - start >= ns(2048))
                ++longIdles;
        }
    } counter;
    net->setObservers(&counter, nullptr);
    proc->start(0);
    eq.runUntil(us(1000));
    // ROO's deepest mode needs 2 us+ idle gaps; sp.D must produce many.
    EXPECT_GT(counter.longIdles, 20);
}

} // namespace
} // namespace memnet
