/**
 * @file
 * Host-side profiler unit tests: scope recording, the disabled no-op
 * path, cross-thread merging, the exporters, and ScopedCapture deltas.
 *
 * Every test that records data resets the profiler first and disables
 * it afterwards, so tests stay independent even though the collectors
 * are process-global.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "memnet/parallel.hh"
#include "memnet/simulator.hh"
#include "obs/prof.hh"

namespace memnet
{
namespace
{

class ProfTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        prof::reset();
        prof::setEnabled(true);
    }

    void
    TearDown() override
    {
        prof::setEnabled(false);
        prof::reset();
    }
};

#if MEMNET_PROFILE

TEST_F(ProfTest, ScopesNestIntoATree)
{
    {
        MEMNET_PROF_SCOPE("outer");
        {
            MEMNET_PROF_SCOPE("inner");
        }
        {
            MEMNET_PROF_SCOPE("inner");
        }
    }
    const prof::PhaseTree t = prof::snapshot();
    ASSERT_EQ(t.name, "all");
    const prof::PhaseTree *outer = t.child("outer");
    ASSERT_NE(outer, nullptr);
    EXPECT_EQ(outer->count, 1u);
    const prof::PhaseTree *inner = outer->child("inner");
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(inner->count, 2u);
    // Inclusive time flows up: the parent covers its child.
    EXPECT_GE(outer->ns, inner->ns);
    EXPECT_EQ(outer->selfNs(), outer->ns - inner->ns);
}

TEST_F(ProfTest, DisabledScopesRecordNothing)
{
    prof::setEnabled(false);
    {
        MEMNET_PROF_SCOPE("ghost");
    }
    prof::setEnabled(true);
    EXPECT_EQ(prof::snapshot().child("ghost"), nullptr);
}

TEST_F(ProfTest, ResetDropsDataButKeepsOpenScopesValid)
{
    MEMNET_PROF_SCOPE("open");
    {
        MEMNET_PROF_SCOPE("closed");
    }
    prof::reset();
    {
        MEMNET_PROF_SCOPE("after");
    }
    const prof::PhaseTree t = prof::snapshot();
    const prof::PhaseTree *open = t.child("open");
    ASSERT_NE(open, nullptr);
    // "closed" fully preceded the reset: its count is gone even though
    // the node survives in the live tree.
    const prof::PhaseTree *closed = open->child("closed");
    if (closed) {
        EXPECT_EQ(closed->count, 0u);
    }
    const prof::PhaseTree *after = open->child("after");
    ASSERT_NE(after, nullptr);
    EXPECT_EQ(after->count, 1u);
}

TEST_F(ProfTest, ExitedThreadsMergeByPhaseName)
{
    auto work = []() {
        MEMNET_PROF_SCOPE("worker_phase");
        MEMNET_PROF_SCOPE("leaf");
    };
    std::thread a(work), b(work);
    a.join();
    b.join();
    {
        MEMNET_PROF_SCOPE("worker_phase");
    }
    const prof::PhaseTree t = prof::snapshot();
    const prof::PhaseTree *wp = t.child("worker_phase");
    ASSERT_NE(wp, nullptr);
    // Two exited threads (retained trees) plus this thread, merged by
    // name into one node.
    EXPECT_EQ(wp->count, 3u);
    const prof::PhaseTree *leaf = wp->child("leaf");
    ASSERT_NE(leaf, nullptr);
    EXPECT_EQ(leaf->count, 2u);
}

TEST_F(ProfTest, ScopedCaptureReturnsOnlyItsOwnDelta)
{
    {
        MEMNET_PROF_SCOPE("noise");
    }
    prof::ScopedCapture cap("cap_root");
    {
        MEMNET_PROF_SCOPE("work");
    }
    const std::vector<prof::ProfPhase> rows = cap.finish();
    ASSERT_FALSE(rows.empty());
    bool saw_root = false, saw_work = false, saw_noise = false;
    for (const prof::ProfPhase &p : rows) {
        if (p.path == "cap_root") {
            saw_root = true;
            EXPECT_EQ(p.count, 1u);
        }
        if (p.path == "cap_root;work") {
            saw_work = true;
            EXPECT_EQ(p.count, 1u);
        }
        if (p.path.find("noise") != std::string::npos)
            saw_noise = true;
    }
    EXPECT_TRUE(saw_root);
    EXPECT_TRUE(saw_work);
    EXPECT_FALSE(saw_noise);
    // finish() is idempotent.
    EXPECT_TRUE(cap.finish().empty());
}

TEST_F(ProfTest, SecondCaptureOfSamePhaseSeesOnlyNewCounts)
{
    {
        prof::ScopedCapture cap("repeat");
        MEMNET_PROF_SCOPE("step");
        (void)cap;
    }
    prof::ScopedCapture cap2("repeat");
    {
        MEMNET_PROF_SCOPE("step");
    }
    {
        MEMNET_PROF_SCOPE("step");
    }
    for (const prof::ProfPhase &p : cap2.finish()) {
        if (p.path == "repeat;step") {
            EXPECT_EQ(p.count, 2u); // not 3: first run predates cap2
        }
    }
}

TEST_F(ProfTest, ParallelRunnerWorkerPhasesSurviveJoin)
{
    std::vector<SystemConfig> configs;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        SystemConfig cfg;
        cfg.workload = "mixE";
        cfg.topology = TopologyKind::Star;
        cfg.policy = Policy::FullPower;
        cfg.warmup = us(20);
        cfg.measure = us(50);
        cfg.seed = seed;
        configs.push_back(cfg);
    }
    Runner runner;
    ParallelRunner(runner, 4).run(configs);

    // The workers exited inside run(); their trees must be retained
    // and merged by phase name.
    const prof::PhaseTree t = prof::snapshot();
    const prof::PhaseTree *worker = t.child("parallel/worker");
    ASSERT_NE(worker, nullptr);
    const prof::PhaseTree *job = worker->child("parallel/job");
    ASSERT_NE(job, nullptr);
    EXPECT_EQ(job->count, 4u);
    const prof::PhaseTree *run = job->child("sim/run");
    ASSERT_NE(run, nullptr);
    EXPECT_EQ(run->count, 4u);
    EXPECT_NE(run->child("sim/measure"), nullptr);

    // Each run's RunProfile carries its own capture delta.
    for (const SystemConfig &cfg : configs) {
        const RunResult &r = runner.get(cfg);
        ASSERT_FALSE(r.profile.profPhases.empty()) << cfg.seed;
        EXPECT_EQ(r.profile.profPhases.front().path, "sim/run");
        EXPECT_EQ(r.profile.profPhases.front().count, 1u);
    }
}

#endif // MEMNET_PROFILE

// The exporters consume a value-type tree, so they are testable with
// hand-built golden input in both build flavors.

prof::PhaseTree
goldenTree()
{
    prof::PhaseTree root{"all", 1000, 0, {}};
    prof::PhaseTree a{"sim/run", 900, 1, {}};
    a.children.push_back(prof::PhaseTree{"eq/dispatch", 700, 2, {}});
    a.children.back().children.push_back(
        prof::PhaseTree{"net/route", 300, 40, {}});
    root.children.push_back(a);
    root.children.push_back(prof::PhaseTree{"other", 100, 1, {}});
    return root;
}

TEST(ProfExport, CollapsedStacksMatchGolden)
{
    std::ostringstream os;
    prof::writeCollapsed(os, goldenTree());
    // Root omitted; one line per phase with nonzero self time, path
    // components joined with ';', self time in ns.
    EXPECT_EQ(os.str(),
              "sim/run 200\n"
              "sim/run;eq/dispatch 400\n"
              "sim/run;eq/dispatch;net/route 300\n"
              "other 100\n");
}

TEST(ProfExport, JsonTreeMatchesGolden)
{
    std::ostringstream os;
    prof::writeJson(os, goldenTree());
    const std::string s = os.str();
    EXPECT_NE(s.find("\"name\": \"all\""), std::string::npos);
    EXPECT_NE(s.find("\"name\": \"net/route\""), std::string::npos);
    EXPECT_NE(s.find("\"self_ns\": 400"), std::string::npos);
    EXPECT_NE(s.find("\"count\": 40"), std::string::npos);
}

TEST(ProfExport, FlattenListsEveryPhaseDepthFirst)
{
    const std::vector<prof::ProfPhase> rows =
        prof::flatten(goldenTree());
    ASSERT_EQ(rows.size(), 4u);
    EXPECT_EQ(rows[0].path, "sim/run");
    EXPECT_EQ(rows[1].path, "sim/run;eq/dispatch");
    EXPECT_EQ(rows[2].path, "sim/run;eq/dispatch;net/route");
    EXPECT_EQ(rows[3].path, "other");
    EXPECT_EQ(rows[2].ns, 300u);
    EXPECT_EQ(rows[2].count, 40u);
}

TEST(ProfExport, SelfTimeNeverUnderflows)
{
    // A parent reporting less inclusive time than its children (clock
    // granularity) clamps to zero instead of wrapping.
    prof::PhaseTree odd{"p", 10, 1, {}};
    odd.children.push_back(prof::PhaseTree{"c", 25, 1, {}});
    EXPECT_EQ(odd.selfNs(), 0u);
}

} // namespace
} // namespace memnet
