/**
 * @file
 * Property tests for obs::QuantileSketch, the fixed-memory streaming
 * histogram behind the latency observatory: bucket-mapping exactness,
 * the advertised rank-error bound against exact order statistics,
 * merge associativity, snapshot subtraction, and the empty-sketch
 * guarantees (always 0, never NaN/UB).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "obs/quantile_sketch.hh"

namespace memnet
{
namespace
{

using obs::QuantileSketch;

TEST(QuantileSketch, SmallValuesMapToExactUnitBuckets)
{
    for (std::uint64_t v = 0; v < 2 * QuantileSketch::kSubBuckets; ++v) {
        EXPECT_EQ(QuantileSketch::bucketOf(v),
                  static_cast<std::size_t>(v));
        EXPECT_EQ(QuantileSketch::bucketUpperBound(
                      QuantileSketch::bucketOf(v)),
                  v);
    }
}

TEST(QuantileSketch, BucketBoundsBracketEveryValue)
{
    // For any v, the bucket upper bound is >= v and overshoots by at
    // most kRelativeError — the invariant every quantile answer
    // inherits. Exercised across all magnitudes including the extremes.
    std::mt19937_64 rng(42);
    std::vector<std::uint64_t> values = {0, 1, 63, 64, 65, 1ULL << 40,
                                         ~std::uint64_t{0}};
    for (int i = 0; i < 20000; ++i) {
        const int bits = static_cast<int>(rng() % 64);
        values.push_back(rng() >> bits); // log-uniform magnitudes
    }
    for (std::uint64_t v : values) {
        const std::size_t idx = QuantileSketch::bucketOf(v);
        ASSERT_LT(idx, QuantileSketch::kBuckets);
        const std::uint64_t ub = QuantileSketch::bucketUpperBound(idx);
        ASSERT_GE(ub, v);
        ASSERT_LE(ub - v, v / QuantileSketch::kSubBuckets) << v;
    }
}

TEST(QuantileSketch, BucketIndexIsMonotoneAcrossBoundaries)
{
    std::mt19937_64 rng(7);
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t v = rng() >> (rng() % 64);
        if (v == ~std::uint64_t{0})
            continue;
        ASSERT_LE(QuantileSketch::bucketOf(v),
                  QuantileSketch::bucketOf(v + 1))
            << v;
    }
}

TEST(QuantileSketch, EmptySketchAnswersZeroEverywhere)
{
    const QuantileSketch s;
    EXPECT_EQ(s.samples(), 0u);
    EXPECT_EQ(s.sum(), 0u);
    EXPECT_EQ(s.maxValue(), 0u);
    for (double q : {0.0, 0.5, 0.99, 0.999, 1.0, -1.0, 2.0})
        EXPECT_EQ(s.quantile(q), 0u) << q;
}

TEST(QuantileSketch, SingleSampleIsEveryQuantile)
{
    for (std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1},
                            std::uint64_t{12345},
                            std::uint64_t{1} << 50}) {
        QuantileSketch s;
        s.record(v);
        EXPECT_EQ(s.samples(), 1u);
        EXPECT_EQ(s.maxValue(), v);
        // The upper-bound estimate clamps to the exact max, so a
        // one-sample sketch answers exactly.
        for (double q : {0.0, 0.5, 0.999, 1.0})
            EXPECT_EQ(s.quantile(q), v) << q;
    }
}

TEST(QuantileSketch, RankErrorBoundHoldsAgainstExactOrderStatistics)
{
    // The core guarantee: for any quantile q, the estimate brackets the
    // exact order statistic from above by at most kRelativeError
    // (integer slack of 1 for the floor division).
    std::mt19937_64 rng(1234);
    for (const std::size_t n : {std::size_t{1}, std::size_t{2},
                                std::size_t{3}, std::size_t{17},
                                std::size_t{1000},
                                std::size_t{20000}}) {
        QuantileSketch s;
        std::vector<std::uint64_t> exact;
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t v = rng() >> (rng() % 50);
            s.record(v);
            exact.push_back(v);
        }
        std::sort(exact.begin(), exact.end());
        for (double q : {0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
            std::uint64_t rank = static_cast<std::uint64_t>(
                q * static_cast<double>(n) + 0.5);
            rank = std::max<std::uint64_t>(
                1, std::min<std::uint64_t>(rank, n));
            const std::uint64_t truth = exact[rank - 1];
            const std::uint64_t est = s.quantile(q);
            ASSERT_GE(est, truth) << "n=" << n << " q=" << q;
            ASSERT_LE(est - truth,
                      truth / QuantileSketch::kSubBuckets + 1)
                << "n=" << n << " q=" << q;
        }
        EXPECT_EQ(s.quantile(1.0), exact.back()); // max is exact
    }
}

TEST(QuantileSketch, QuantileIsMonotoneInQ)
{
    std::mt19937_64 rng(99);
    QuantileSketch s;
    for (int i = 0; i < 5000; ++i)
        s.record(rng() >> (rng() % 40));
    std::uint64_t last = 0;
    for (double q = 0.0; q <= 1.0; q += 0.01) {
        const std::uint64_t v = s.quantile(q);
        ASSERT_GE(v, last) << q;
        last = v;
    }
}

TEST(QuantileSketch, MergeIsExactAndAssociative)
{
    std::mt19937_64 rng(5);
    QuantileSketch a, b, c, all;
    for (int i = 0; i < 3000; ++i) {
        const std::uint64_t v = rng() >> (rng() % 48);
        (i % 3 == 0 ? a : i % 3 == 1 ? b : c).record(v);
        all.record(v);
    }
    // (a + b) + c
    QuantileSketch left = a;
    left.merge(b);
    left.merge(c);
    // a + (b + c)
    QuantileSketch bc = b;
    bc.merge(c);
    QuantileSketch right = a;
    right.merge(bc);

    EXPECT_TRUE(left == right);
    // And both equal the sketch that saw every value directly — the
    // property the multichannel cross-channel merge relies on.
    EXPECT_TRUE(left == all);
}

TEST(QuantileSketch, SubtractRecoversTheDeltaWindow)
{
    // Epoch-delta usage: snapshot, keep recording, subtract. Early
    // values are kept smaller than late ones so the cumulative max
    // equals the delta window's max and full equality applies.
    std::mt19937_64 rng(11);
    QuantileSketch s, tail_only;
    for (int i = 0; i < 1000; ++i)
        s.record(rng() % 1000);
    const QuantileSketch snap = s;
    for (int i = 0; i < 500; ++i) {
        const std::uint64_t v = 1000 + rng() % 100000;
        s.record(v);
        tail_only.record(v);
    }
    QuantileSketch delta = s;
    delta.subtract(snap);
    EXPECT_TRUE(delta == tail_only);
    EXPECT_EQ(delta.samples(), 500u);
}

TEST(QuantileSketch, RandomSampleCountsNeverProduceNonsense)
{
    // Property sweep over random sample counts, explicitly including 0
    // and 1: quantiles are always finite uint64s bounded by the exact
    // max, and q=1 always answers it.
    std::mt19937_64 rng(2026);
    std::vector<std::size_t> counts = {0, 1};
    for (int i = 0; i < 40; ++i)
        counts.push_back(rng() % 2000);
    for (std::size_t n : counts) {
        QuantileSketch s;
        std::uint64_t mx = 0;
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t v = rng() >> (rng() % 60);
            s.record(v);
            mx = std::max(mx, v);
        }
        EXPECT_EQ(s.samples(), n);
        EXPECT_EQ(s.maxValue(), mx);
        for (double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
            const std::uint64_t v = s.quantile(q);
            EXPECT_LE(v, mx) << "n=" << n << " q=" << q;
            if (n == 0)
                EXPECT_EQ(v, 0u);
        }
        if (n > 0)
            EXPECT_EQ(s.quantile(1.0), mx);
    }
}

TEST(LatencyPercentiles, SummarizeSketchFillsEveryField)
{
    obs::QuantileSketch s;
    for (std::uint64_t v = 1; v <= 100; ++v)
        s.record(v * 1000);
    const LatencyPercentiles p = summarizeSketch(s);
    EXPECT_EQ(p.samples, 100u);
    EXPECT_EQ(p.sumPs, 5050000u);
    EXPECT_EQ(p.maxPs, 100000u);
    EXPECT_LE(p.p50Ps, p.p90Ps);
    EXPECT_LE(p.p90Ps, p.p99Ps);
    EXPECT_LE(p.p99Ps, p.p999Ps);
    EXPECT_LE(p.p999Ps, p.maxPs);
}

} // namespace
} // namespace memnet
