/**
 * @file
 * Unit tests for the PCG32 wrapper.
 */

#include <gtest/gtest.h>

#include "sim/random.hh"

namespace memnet
{
namespace
{

TEST(Random, DeterministicForSameSeed)
{
    Random a(42, 7), b(42, 7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentStreamsDiffer)
{
    Random a(42, 1), b(42, 2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Random, UniformInUnitInterval)
{
    Random r(1);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Random, UniformMeanNearHalf)
{
    Random r(2);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Random, BelowStaysInRange)
{
    Random r(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Random, Below64StaysInRange)
{
    Random r(4);
    const std::uint64_t n = 1ULL << 40;
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below64(n), n);
}

TEST(Random, ExponentialMeanApprox)
{
    Random r(5);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.exponential(250.0);
    EXPECT_NEAR(sum / n, 250.0, 10.0);
}

TEST(Random, ExponentialNonNegative)
{
    Random r(6);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GE(r.exponential(1.0), 0.0);
}

TEST(Random, ChanceProbability)
{
    Random r(7);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

class RandomSeedSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomSeedSweep, UniformCoversQuartiles)
{
    Random r(GetParam());
    int q[4] = {0, 0, 0, 0};
    for (int i = 0; i < 4000; ++i)
        ++q[static_cast<int>(r.uniform() * 4.0)];
    for (int i = 0; i < 4; ++i)
        EXPECT_GT(q[i], 800) << "quartile " << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSeedSweep,
                         ::testing::Values(1, 2, 3, 1234567, 1ULL << 50));

} // namespace
} // namespace memnet
