/**
 * @file
 * Smoke tests for the report printers.
 */

#include <gtest/gtest.h>

#include "memnet/report.hh"
#include "memnet/simulator.hh"

namespace memnet
{
namespace
{

RunResult
sampleRun()
{
    SystemConfig cfg;
    cfg.workload = "mixE";
    cfg.topology = TopologyKind::Star;
    cfg.sizeClass = SizeClass::Big;
    cfg.policy = Policy::Aware;
    cfg.mechanism = BwMechanism::Vwl;
    cfg.roo = true;
    cfg.warmup = us(50);
    cfg.measure = us(150);
    return runSimulation(cfg);
}

TEST(Report, SummaryMentionsKeyNumbers)
{
    const RunResult r = sampleRun();
    ::testing::internal::CaptureStdout();
    printRunSummary(r);
    const std::string out = ::testing::internal::GetCapturedStdout();
    EXPECT_NE(out.find("mixE"), std::string::npos);
    EXPECT_NE(out.find("modules: 8"), std::string::npos);
    EXPECT_NE(out.find("W per HMC"), std::string::npos);
}

TEST(Report, ModuleReportHasOneRowPerModule)
{
    const RunResult r = sampleRun();
    ASSERT_EQ(r.modules.size(), 8u);
    ::testing::internal::CaptureStdout();
    printModuleReport(r);
    const std::string out = ::testing::internal::GetCapturedStdout();
    // Header + separator + 8 rows.
    int lines = 0;
    for (char c : out)
        lines += c == '\n';
    EXPECT_EQ(lines, 10);
}

TEST(Report, PowerBreakdownSharesSumToOne)
{
    const RunResult r = sampleRun();
    ::testing::internal::CaptureStdout();
    printPowerBreakdown(r);
    const std::string out = ::testing::internal::GetCapturedStdout();
    EXPECT_NE(out.find("Idle I/O"), std::string::npos);
    EXPECT_NE(out.find("100.0%"), std::string::npos);
}

TEST(Report, LinkHoursHandlesEmptyData)
{
    RunResult r;
    ::testing::internal::CaptureStdout();
    printLinkHours(r);
    const std::string out = ::testing::internal::GetCapturedStdout();
    EXPECT_NE(out.find("no link-hour data"), std::string::npos);
}

TEST(Report, ModuleDetailsAreConsistent)
{
    const RunResult r = sampleRun();
    for (const ModuleDetail &m : r.modules) {
        EXPECT_GE(m.hopDistance, 1);
        EXPECT_GE(m.requestLinkUtil, 0.0);
        EXPECT_LE(m.requestLinkUtil, 1.0);
        EXPECT_GT(m.requestLinkPowerFrac, 0.0);
        EXPECT_LE(m.requestLinkPowerFrac, 1.0 + 1e-9);
    }
    // Module 0 carries everything: it must be the busiest.
    for (const ModuleDetail &m : r.modules) {
        EXPECT_LE(m.requestLinkUtil,
                  r.modules[0].requestLinkUtil + 1e-9);
    }
}

} // namespace
} // namespace memnet
