/**
 * @file
 * Smoke tests for the report printers.
 */

#include <gtest/gtest.h>

#include "memnet/report.hh"
#include "memnet/simulator.hh"

namespace memnet
{
namespace
{

RunResult
sampleRun()
{
    SystemConfig cfg;
    cfg.workload = "mixE";
    cfg.topology = TopologyKind::Star;
    cfg.sizeClass = SizeClass::Big;
    cfg.policy = Policy::Aware;
    cfg.mechanism = BwMechanism::Vwl;
    cfg.roo = true;
    cfg.warmup = us(50);
    cfg.measure = us(150);
    return runSimulation(cfg);
}

TEST(Report, SummaryMentionsKeyNumbers)
{
    const RunResult r = sampleRun();
    ::testing::internal::CaptureStdout();
    printRunSummary(r);
    const std::string out = ::testing::internal::GetCapturedStdout();
    EXPECT_NE(out.find("mixE"), std::string::npos);
    EXPECT_NE(out.find("modules: 8"), std::string::npos);
    EXPECT_NE(out.find("W per HMC"), std::string::npos);
}

TEST(Report, ModuleReportHasOneRowPerModule)
{
    const RunResult r = sampleRun();
    ASSERT_EQ(r.modules.size(), 8u);
    ::testing::internal::CaptureStdout();
    printModuleReport(r);
    const std::string out = ::testing::internal::GetCapturedStdout();
    // Header + separator + 8 rows.
    int lines = 0;
    for (char c : out)
        lines += c == '\n';
    EXPECT_EQ(lines, 10);
}

TEST(Report, PowerBreakdownSharesSumToOne)
{
    const RunResult r = sampleRun();
    ::testing::internal::CaptureStdout();
    printPowerBreakdown(r);
    const std::string out = ::testing::internal::GetCapturedStdout();
    EXPECT_NE(out.find("Idle I/O"), std::string::npos);
    EXPECT_NE(out.find("100.0%"), std::string::npos);
}

TEST(Report, LinkHoursHandlesEmptyData)
{
    RunResult r;
    ::testing::internal::CaptureStdout();
    printLinkHours(r);
    const std::string out = ::testing::internal::GetCapturedStdout();
    EXPECT_NE(out.find("no link-hour data"), std::string::npos);
}

TEST(Report, ModuleDetailsAreConsistent)
{
    const RunResult r = sampleRun();
    for (const ModuleDetail &m : r.modules) {
        EXPECT_GE(m.hopDistance, 1);
        EXPECT_GE(m.requestLinkUtil, 0.0);
        EXPECT_LE(m.requestLinkUtil, 1.0);
        EXPECT_GT(m.requestLinkPowerFrac, 0.0);
        EXPECT_LE(m.requestLinkPowerFrac, 1.0 + 1e-9);
    }
    // Module 0 carries everything: it must be the busiest.
    for (const ModuleDetail &m : r.modules) {
        EXPECT_LE(m.requestLinkUtil,
                  r.modules[0].requestLinkUtil + 1e-9);
    }
}

RunResult
fakeProfiledRun(std::uint64_t events, double wall)
{
    RunResult r;
    r.profile.eventsFired = events;
    r.profile.wallSeconds = wall;
    return r;
}

TEST(SeedProfileSummary, OddCountPicksMiddleRate)
{
    // Rates: 100/1=100, 300/1=300, 200/1=200 events/s.
    const RunResult a = fakeProfiledRun(100, 1.0);
    const RunResult b = fakeProfiledRun(300, 1.0);
    const RunResult c = fakeProfiledRun(200, 1.0);
    const SeedProfileSummary s =
        summarizeSeedProfiles({&a, &b, &c});
    EXPECT_EQ(s.runs, 3);
    EXPECT_DOUBLE_EQ(s.minEventsPerSec, 100.0);
    EXPECT_DOUBLE_EQ(s.medianEventsPerSec, 200.0);
    EXPECT_DOUBLE_EQ(s.maxEventsPerSec, 300.0);
    EXPECT_EQ(s.totalEventsFired, 600u);
    EXPECT_DOUBLE_EQ(s.totalWallSeconds, 3.0);
}

TEST(SeedProfileSummary, EvenCountAveragesTheMiddlePair)
{
    const RunResult a = fakeProfiledRun(100, 1.0);
    const RunResult b = fakeProfiledRun(400, 1.0);
    const RunResult c = fakeProfiledRun(200, 1.0);
    const RunResult d = fakeProfiledRun(300, 1.0);
    const SeedProfileSummary s =
        summarizeSeedProfiles({&a, &b, &c, &d});
    EXPECT_DOUBLE_EQ(s.medianEventsPerSec, 250.0);
}

TEST(SeedProfileSummary, EmptyAndNullInputsAreHarmless)
{
    const SeedProfileSummary empty = summarizeSeedProfiles({});
    EXPECT_EQ(empty.runs, 0);
    const SeedProfileSummary nulls =
        summarizeSeedProfiles({nullptr, nullptr});
    EXPECT_EQ(nulls.runs, 0);
    // Printing an empty summary emits nothing.
    ::testing::internal::CaptureStdout();
    printSeedProfileSummary(empty);
    EXPECT_TRUE(::testing::internal::GetCapturedStdout().empty());
}

TEST(SeedProfileSummary, PrintMentionsMinMedianMax)
{
    const RunResult a = fakeProfiledRun(1000000, 1.0);
    const SeedProfileSummary s = summarizeSeedProfiles({&a});
    ::testing::internal::CaptureStdout();
    printSeedProfileSummary(s);
    const std::string out = ::testing::internal::GetCapturedStdout();
    EXPECT_NE(out.find("min/median/max"), std::string::npos);
    EXPECT_NE(out.find("1 runs"), std::string::npos);
}

} // namespace
} // namespace memnet
