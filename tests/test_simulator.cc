/**
 * @file
 * End-to-end tests of the Simulator facade.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "memnet/simulator.hh"

namespace memnet
{
namespace
{

SystemConfig
quickConfig()
{
    SystemConfig cfg;
    cfg.workload = "mixE"; // 8 GB -> 2 (small) / 8 (big) modules
    cfg.topology = TopologyKind::Star;
    cfg.sizeClass = SizeClass::Big;
    cfg.warmup = us(50);
    cfg.measure = us(200);
    return cfg;
}

TEST(Simulator, FullPowerRunProducesSaneBreakdown)
{
    const RunResult r = runSimulation(quickConfig());
    EXPECT_EQ(r.numModules, 8);
    EXPECT_GT(r.completedReads, 100u);
    EXPECT_GT(r.perHmc.totalW(), 1.0);
    EXPECT_LT(r.perHmc.totalW(), 13.4);
    // All six components present and non-negative.
    EXPECT_GT(r.perHmc.idleIoW, 0.0);
    EXPECT_GE(r.perHmc.activeIoW, 0.0);
    EXPECT_GT(r.perHmc.logicLeakW, 0.0);
    EXPECT_GE(r.perHmc.logicDynW, 0.0);
    EXPECT_GT(r.perHmc.dramLeakW, 0.0);
    EXPECT_GE(r.perHmc.dramDynW, 0.0);
    const double sum = r.perHmc.totalW() * r.numModules;
    EXPECT_NEAR(sum, r.totalNetworkPowerW, 1e-6);
}

TEST(Simulator, IdleIoDominatesAtFullPower)
{
    // The paper's headline: idle I/O is the top power contributor.
    const RunResult r = runSimulation(quickConfig());
    EXPECT_GT(r.idleIoFrac, 0.35);
    EXPECT_GT(r.perHmc.idleIoW, r.perHmc.dramLeakW);
    EXPECT_GT(r.perHmc.idleIoW, r.perHmc.logicLeakW);
}

TEST(Simulator, DeterministicForSameSeed)
{
    const RunResult a = runSimulation(quickConfig());
    const RunResult b = runSimulation(quickConfig());
    EXPECT_EQ(a.completedReads, b.completedReads);
    EXPECT_DOUBLE_EQ(a.totalNetworkPowerW, b.totalNetworkPowerW);
    EXPECT_DOUBLE_EQ(a.channelUtil, b.channelUtil);
    EXPECT_EQ(a.eventsFired, b.eventsFired);
}

TEST(Simulator, SeedChangesChangeOutcome)
{
    SystemConfig cfg = quickConfig();
    const RunResult a = runSimulation(cfg);
    cfg.seed = 999;
    const RunResult b = runSimulation(cfg);
    EXPECT_NE(a.completedReads, b.completedReads);
}

TEST(Simulator, SmallNetworkHasFewerModules)
{
    SystemConfig cfg = quickConfig();
    cfg.sizeClass = SizeClass::Small;
    const RunResult r = runSimulation(cfg);
    EXPECT_EQ(r.numModules, 2);
}

TEST(Simulator, EveryPolicyRuns)
{
    for (Policy p : {Policy::FullPower, Policy::Unaware, Policy::Aware,
                     Policy::StaticTaper}) {
        SystemConfig cfg = quickConfig();
        cfg.policy = p;
        if (p != Policy::FullPower) {
            cfg.mechanism = BwMechanism::Vwl;
            cfg.roo = p != Policy::StaticTaper;
        }
        if (p == Policy::StaticTaper)
            cfg.interleavePages = true;
        const RunResult r = runSimulation(cfg);
        EXPECT_GT(r.completedReads, 50u) << policyName(p);
    }
}

TEST(Simulator, ManagedPowerNeverExceedsFullPowerMuch)
{
    SystemConfig fp = quickConfig();
    const RunResult base = runSimulation(fp);

    SystemConfig cfg = quickConfig();
    cfg.policy = Policy::Aware;
    cfg.mechanism = BwMechanism::Vwl;
    cfg.roo = true;
    const RunResult r = runSimulation(cfg);
    EXPECT_LT(r.totalNetworkPowerW, base.totalNetworkPowerW * 1.01);
}

TEST(Simulator, LinkHoursSumToLinkSeconds)
{
    SystemConfig cfg = quickConfig();
    cfg.policy = Policy::Unaware;
    cfg.mechanism = BwMechanism::Vwl;
    const RunResult r = runSimulation(cfg);
    double total = 0;
    for (const auto &row : r.linkHours)
        for (double v : row)
            total += v;
    // 2 links per module for the measured window.
    const double expect = 2.0 * r.numModules * toSeconds(cfg.measure);
    EXPECT_NEAR(total, expect, expect * 0.01);
}

TEST(Simulator, ChannelUtilTracksWorkloadTarget)
{
    SystemConfig cfg = quickConfig();
    cfg.workload = "lu.D";
    cfg.measure = us(400);
    const RunResult r = runSimulation(cfg);
    EXPECT_NEAR(r.channelUtil, 0.55, 0.12);
}

TEST(Simulator, AvgLinkUtilBelowChannelUtil)
{
    // Traffic attenuates across the network (Figure 9): the average
    // over all links is below the channel utilization.
    SystemConfig cfg = quickConfig();
    cfg.workload = "mixA"; // hot head, cold tail
    const RunResult r = runSimulation(cfg);
    EXPECT_LT(r.avgLinkUtil, r.channelUtil);
}

TEST(Simulator, MeasureWindowEnvOverride)
{
    ::setenv("MEMNET_SIM_US", "100", 1);
    SystemConfig cfg = quickConfig();
    const RunResult a = runSimulation(cfg);
    ::unsetenv("MEMNET_SIM_US");
    const RunResult b = runSimulation(cfg);
    // The override shortens the window, so fewer reads complete.
    EXPECT_LT(a.completedReads, b.completedReads);
}

} // namespace
} // namespace memnet
