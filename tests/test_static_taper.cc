/**
 * @file
 * Unit tests for the static fat/tapered-tree baseline (Section VII-A).
 */

#include <gtest/gtest.h>

#include <memory>

#include "mgmt/static_taper.hh"
#include "sim/event_queue.hh"

namespace memnet
{
namespace
{

TEST(StaticTaper, ChainFractionsFollowFormula)
{
    // Daisy chain of N: S(d)=1, so bw(d) = 1 - (d-1)/N.
    Topology t = Topology::build(TopologyKind::DaisyChain, 4);
    const auto f = StaticTaperManager::taperFractions(t);
    ASSERT_EQ(f.size(), 5u);
    EXPECT_DOUBLE_EQ(f[1], 1.0);
    EXPECT_DOUBLE_EQ(f[2], 0.75);
    EXPECT_DOUBLE_EQ(f[3], 0.50);
    EXPECT_DOUBLE_EQ(f[4], 0.25);
}

TEST(StaticTaper, TernaryTreeFractions)
{
    // N=13: S = {1,3,9}; bw(1)=1, bw(2)=(1-1/13)/3, bw(3)=(1-4/13)/9.
    Topology t = Topology::build(TopologyKind::TernaryTree, 13);
    const auto f = StaticTaperManager::taperFractions(t);
    ASSERT_EQ(f.size(), 4u);
    EXPECT_DOUBLE_EQ(f[1], 1.0);
    EXPECT_NEAR(f[2], (1.0 - 1.0 / 13) / 3, 1e-12);
    EXPECT_NEAR(f[3], (1.0 - 4.0 / 13) / 9, 1e-12);
}

TEST(StaticTaper, FractionsDecreaseWithDepth)
{
    for (TopologyKind k : {TopologyKind::DaisyChain, TopologyKind::Star,
                           TopologyKind::DdrxLike}) {
        Topology t = Topology::build(k, 17);
        const auto f = StaticTaperManager::taperFractions(t);
        for (std::size_t d = 2; d < f.size(); ++d)
            EXPECT_LE(f[d], f[d - 1] + 1e-12)
                << topologyName(k) << " depth " << d;
    }
}

class StaticApplyTest : public ::testing::Test
{
  protected:
    void
    build(TopologyKind kind, int n)
    {
        Topology topo = Topology::build(kind, n);
        AddressMap amap;
        amap.interleavePages = true;
        net = std::make_unique<Network>(eq, topo, dram,
                                        BwMechanism::Vwl, roo, pm,
                                        amap);
    }

    EventQueue eq;
    DramParams dram;
    HmcPowerModel pm;
    RooConfig roo;
    std::unique_ptr<Network> net;
};

TEST_F(StaticApplyTest, ModesRoundUpToAvailableBandwidth)
{
    build(TopologyKind::DaisyChain, 4);
    StaticTaperManager taper(*net, BwMechanism::Vwl);
    taper.apply();
    // Fractions 1, .75, .5, .25 -> VWL options 16, 16, 8, 4 lanes.
    EXPECT_EQ(net->requestLink(0).power().modeIndex(), 0u);
    EXPECT_EQ(net->requestLink(1).power().modeIndex(), 0u);
    EXPECT_EQ(net->requestLink(2).power().modeIndex(), 1u);
    EXPECT_EQ(net->requestLink(3).power().modeIndex(), 2u);
    // Response links get the same static widths.
    EXPECT_EQ(net->responseLink(3).power().modeIndex(), 2u);
}

TEST_F(StaticApplyTest, RootLinkAlwaysFullBandwidth)
{
    for (TopologyKind k : {TopologyKind::TernaryTree, TopologyKind::Star,
                           TopologyKind::DdrxLike}) {
        build(k, 12);
        StaticTaperManager taper(*net, BwMechanism::Vwl);
        taper.apply();
        EXPECT_EQ(net->requestLink(0).power().modeIndex(), 0u)
            << topologyName(k);
    }
}

TEST_F(StaticApplyTest, NeverSelectsBandwidthBelowFraction)
{
    build(TopologyKind::Star, 23);
    StaticTaperManager taper(*net, BwMechanism::Vwl);
    taper.apply();
    const auto frac =
        StaticTaperManager::taperFractions(net->topology());
    const ModeTable &t = ModeTable::forMechanism(BwMechanism::Vwl);
    for (int m = 0; m < net->numModules(); ++m) {
        const int d = net->topology().hopDistance(m);
        const std::size_t k =
            net->requestLink(m).power().modeIndex();
        EXPECT_GE(t.mode(k).bwFrac, frac[d] - 1e-12)
            << "module " << m;
    }
}

} // namespace
} // namespace memnet
