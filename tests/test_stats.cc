/**
 * @file
 * Unit tests for statistics accumulators.
 */

#include <gtest/gtest.h>

#include "sim/stats.hh"

namespace memnet
{
namespace
{

TEST(Average, EmptyIsZero)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_EQ(a.count(), 0u);
}

TEST(Average, MeanAndTotal)
{
    Average a;
    a.sample(1.0);
    a.sample(2.0);
    a.sample(6.0);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_DOUBLE_EQ(a.total(), 9.0);
    EXPECT_EQ(a.count(), 3u);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
}

TEST(TimeIntegrator, IntegratesPiecewiseConstant)
{
    TimeIntegrator t;
    t.start(0, 2.0); // 2 W
    t.update(us(1), 4.0);
    t.update(us(3), 0.0);
    t.accrue(us(10));
    // 2 W for 1 us + 4 W for 2 us = 2e-6 + 8e-6 J.
    EXPECT_NEAR(t.total(), 10e-6, 1e-12);
}

TEST(TimeIntegrator, AccrueWithoutChangeKeepsValue)
{
    TimeIntegrator t;
    t.start(0, 5.0);
    t.accrue(us(2));
    EXPECT_NEAR(t.total(), 10e-6, 1e-12);
    EXPECT_DOUBLE_EQ(t.value(), 5.0);
}

TEST(TimeIntegrator, ResetClearsAccumulation)
{
    TimeIntegrator t;
    t.start(0, 1.0);
    t.accrue(us(1));
    t.reset(us(1));
    t.accrue(us(2));
    EXPECT_NEAR(t.total(), 1e-6, 1e-12);
}

TEST(TickHistogram, BucketsByLowerBound)
{
    TickHistogram h({ns(10), ns(100), ns(1000)});
    h.sample(ns(5));    // below all bounds -> bucket 0
    h.sample(ns(10));   // bucket 1
    h.sample(ns(99));   // bucket 1
    h.sample(ns(100));  // bucket 2
    h.sample(ns(5000)); // bucket 3
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(2), 1u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.samples(), 5u);
}

TEST(TickHistogram, CountAtLeast)
{
    TickHistogram h({ns(10), ns(100)});
    h.sample(ns(1));
    h.sample(ns(50));
    h.sample(ns(200));
    h.sample(ns(300));
    // countAtLeast(i) counts samples >= lowerBounds[i].
    EXPECT_EQ(h.countAtLeast(0), 3u);
    EXPECT_EQ(h.countAtLeast(1), 2u);
}

TEST(TickHistogram, ExactBoundaryValuesLandInTheirOwnBucket)
{
    // The binary-search bucketing must keep lower bounds inclusive:
    // a sample exactly at bounds[i] belongs to bucket i+1, one tick
    // below it to bucket i.
    TickHistogram h({ns(10), ns(100), ns(1000)});
    h.sample(ns(10) - 1);
    h.sample(ns(10));
    h.sample(ns(100) - 1);
    h.sample(ns(100));
    h.sample(ns(1000) - 1);
    h.sample(ns(1000));
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(2), 2u);
    EXPECT_EQ(h.bucket(3), 1u);
}

TEST(TickHistogram, DegenerateShapes)
{
    // No bounds: everything lands in the single open bucket.
    TickHistogram none;
    none.sample(0);
    none.sample(ns(1));
    EXPECT_EQ(none.bucket(0), 2u);

    // One bound: the two-bucket split around it.
    TickHistogram one({ns(10)});
    one.sample(0);
    one.sample(ns(10));
    EXPECT_EQ(one.bucket(0), 1u);
    EXPECT_EQ(one.bucket(1), 1u);
}

TEST(TickHistogram, ResetZeroes)
{
    TickHistogram h({ns(10)});
    h.sample(ns(20));
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.bucket(1), 0u);
}

} // namespace
} // namespace memnet
