/**
 * @file
 * Unit and property tests for the four topology builders.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "net/topology.hh"

namespace memnet
{
namespace
{

TEST(Topology, DaisyChainIsAChain)
{
    Topology t = Topology::build(TopologyKind::DaisyChain, 6);
    t.validate();
    for (int i = 1; i < 6; ++i) {
        EXPECT_EQ(t.parent(i), i - 1);
        EXPECT_EQ(t.hopDistance(i), i + 1);
        EXPECT_EQ(t.radix(i), Radix::Low);
    }
    EXPECT_EQ(t.path(5).size(), 6u);
}

TEST(Topology, TernaryTreeDepthsAreLogarithmic)
{
    Topology t = Topology::build(TopologyKind::TernaryTree, 13);
    t.validate();
    // 1 + 3 + 9 modules -> depths 1, 2, 3.
    EXPECT_EQ(t.hopDistance(0), 1);
    for (int i = 1; i <= 3; ++i)
        EXPECT_EQ(t.hopDistance(i), 2);
    for (int i = 4; i <= 12; ++i)
        EXPECT_EQ(t.hopDistance(i), 3);
    for (int i = 0; i < 13; ++i)
        EXPECT_EQ(t.radix(i), Radix::High);
}

TEST(Topology, StarMatchesTernaryDepthsWithFewerHighRadix)
{
    const int n = 13;
    Topology tern = Topology::build(TopologyKind::TernaryTree, n);
    Topology star = Topology::build(TopologyKind::Star, n);
    star.validate();
    int high = 0;
    for (int i = 0; i < n; ++i) {
        EXPECT_EQ(star.hopDistance(i), tern.hopDistance(i));
        high += star.radix(i) == Radix::High;
    }
    // Only the four internal fan-out modules need four full links.
    EXPECT_EQ(high, 4);
}

TEST(Topology, StarLeafWithOneChildIsLowRadix)
{
    // 5 modules: root has children 1,2,3; module 1 has child 4.
    Topology t = Topology::build(TopologyKind::Star, 5);
    t.validate();
    EXPECT_EQ(t.radix(0), Radix::High); // three children
    EXPECT_EQ(t.radix(1), Radix::Low);  // one child fits a low-radix HMC
    EXPECT_EQ(t.radix(4), Radix::Low);
}

TEST(Topology, DdrxLikeRowsOfThree)
{
    Topology t = Topology::build(TopologyKind::DdrxLike, 9);
    t.validate();
    // Row centers 0, 3, 6 chain together; sides hang off centers.
    EXPECT_EQ(t.parent(1), 0);
    EXPECT_EQ(t.parent(2), 0);
    EXPECT_EQ(t.parent(3), 0);
    EXPECT_EQ(t.parent(4), 3);
    EXPECT_EQ(t.parent(5), 3);
    EXPECT_EQ(t.parent(6), 3);
    EXPECT_EQ(t.radix(0), Radix::High);
    EXPECT_EQ(t.radix(1), Radix::Low);
    // Hop distances grow by rows.
    EXPECT_EQ(t.hopDistance(0), 1);
    EXPECT_EQ(t.hopDistance(2), 2);
    EXPECT_EQ(t.hopDistance(3), 2);
    // Sides of row 2 sit one hop past their row center (depth 3).
    EXPECT_EQ(t.hopDistance(7), 4);
}

TEST(Topology, SingleModuleWorksForAllKinds)
{
    for (TopologyKind k :
         {TopologyKind::DaisyChain, TopologyKind::TernaryTree,
          TopologyKind::Star, TopologyKind::DdrxLike}) {
        Topology t = Topology::build(k, 1);
        t.validate();
        EXPECT_EQ(t.numModules(), 1);
        EXPECT_EQ(t.parent(0), -1);
        EXPECT_EQ(t.hopDistance(0), 1);
    }
}

TEST(Topology, ModulesPerHopSumsToModuleCount)
{
    Topology t = Topology::build(TopologyKind::Star, 23);
    int sum = 0;
    for (int c : t.modulesPerHop())
        sum += c;
    EXPECT_EQ(sum, 23);
}

TEST(Topology, NamesAreStable)
{
    EXPECT_STREQ(topologyName(TopologyKind::DaisyChain), "daisychain");
    EXPECT_STREQ(topologyName(TopologyKind::TernaryTree),
                 "ternary tree");
    EXPECT_STREQ(topologyName(TopologyKind::Star), "star");
    EXPECT_STREQ(topologyName(TopologyKind::DdrxLike), "DDRx-like");
}

/** Property sweep: every builder at every size satisfies invariants. */
class TopologyProperty
    : public ::testing::TestWithParam<std::tuple<TopologyKind, int>>
{
};

TEST_P(TopologyProperty, ValidatesAndIsMinimallyConnected)
{
    const auto [kind, n] = GetParam();
    Topology t = Topology::build(kind, n);
    t.validate();
    EXPECT_EQ(t.numModules(), n);

    // Tree property: exactly n-1 parent edges, no cycles (parent < child
    // is asserted inside finalize), every path starts at the root.
    for (int i = 0; i < n; ++i) {
        const auto &p = t.path(i);
        EXPECT_EQ(p.front(), 0);
        EXPECT_EQ(p.back(), i);
        for (std::size_t j = 1; j < p.size(); ++j)
            EXPECT_EQ(t.parent(p[j]), p[j - 1]);
    }
}

TEST_P(TopologyProperty, DepthIsMinimalForBranchingShapes)
{
    const auto [kind, n] = GetParam();
    if (kind != TopologyKind::TernaryTree && kind != TopologyKind::Star)
        GTEST_SKIP();
    Topology t = Topology::build(kind, n);
    // BFS with branching 3 gives the minimum possible max depth for a
    // tree whose nodes have at most 3 children.
    int cap = 1, depth = 1, covered = 1;
    while (covered < n) {
        cap *= 3;
        covered += cap;
        ++depth;
    }
    int max_d = 0;
    for (int i = 0; i < n; ++i)
        max_d = std::max(max_d, t.hopDistance(i));
    EXPECT_EQ(max_d, depth);
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAndSizes, TopologyProperty,
    ::testing::Combine(
        ::testing::Values(TopologyKind::DaisyChain,
                          TopologyKind::TernaryTree, TopologyKind::Star,
                          TopologyKind::DdrxLike),
        ::testing::Values(1, 2, 3, 4, 5, 7, 9, 12, 17, 24, 38)));

} // namespace
} // namespace memnet
