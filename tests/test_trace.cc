/**
 * @file
 * Unit and integration tests for the trace module.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "workload/trace.hh"

namespace memnet
{
namespace
{

TEST(TraceFormat, RoundTripsRecords)
{
    std::vector<TraceRecord> in = {
        {ns(10), 0x1000, true, 0},
        {ns(25), 0xdeadbeef, false, 3},
        {us(1), 0x40, true, 15},
    };
    std::stringstream ss;
    writeTrace(ss, in);
    const std::vector<TraceRecord> out = readTrace(ss);
    ASSERT_EQ(out.size(), in.size());
    for (std::size_t i = 0; i < in.size(); ++i)
        EXPECT_EQ(out[i], in[i]) << "record " << i;
}

TEST(TraceFormat, SkipsCommentsAndBlankLines)
{
    std::stringstream ss("# header\n\n5.0 R 0x40 2\n");
    const auto t = readTrace(ss);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t[0].when, ns(5));
    EXPECT_TRUE(t[0].isRead);
    EXPECT_EQ(t[0].addr, 0x40u);
    EXPECT_EQ(t[0].core, 2);
}

TEST(TraceFormat, SortsByTime)
{
    std::stringstream ss("20 W 0x80 0\n10 R 0x40 1\n");
    const auto t = readTrace(ss);
    ASSERT_EQ(t.size(), 2u);
    EXPECT_LT(t[0].when, t[1].when);
    EXPECT_TRUE(t[0].isRead);
}

TEST(TraceFormat, MalformedLineDies)
{
    std::stringstream ss("10 X 0x40 1\n");
    EXPECT_DEATH(readTrace(ss), "malformed trace line");
}

TEST(TraceGenerate, RespectsProfileRateApproximately)
{
    const WorkloadProfile &w = workloadByName("lu.D");
    const auto t = generateTrace(w, us(500), 7);
    ASSERT_GT(t.size(), 100u);
    // Expected count: rate * duty-independent (bursts average out).
    const double r = w.readFraction;
    const double bytes = 16 * r + 80 * (1 - r) + 80 * r;
    const double rate =
        w.channelUtil * 2 * Link::fullBytesPerSec() / bytes;
    const double expected = rate * 500e-6;
    EXPECT_NEAR(static_cast<double>(t.size()), expected,
                expected * 0.25);
}

TEST(TraceGenerate, TimesAreSortedAndBounded)
{
    const auto t = generateTrace(workloadByName("mixD"), us(100), 3);
    Tick prev = 0;
    for (const TraceRecord &r : t) {
        EXPECT_GE(r.when, prev);
        EXPECT_LT(r.when, us(100));
        EXPECT_EQ(r.addr % 64, 0u);
        prev = r.when;
    }
}

TEST(TraceGenerate, DeterministicPerSeed)
{
    const auto a = generateTrace(workloadByName("mixD"), us(50), 11);
    const auto b = generateTrace(workloadByName("mixD"), us(50), 11);
    const auto c = generateTrace(workloadByName("mixD"), us(50), 12);
    EXPECT_EQ(a.size(), b.size());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
    EXPECT_NE(a.size(), c.size());
}

class TracePlayerTest : public ::testing::Test
{
  protected:
    void
    build(int modules)
    {
        Topology topo = Topology::build(TopologyKind::Star, modules);
        AddressMap amap;
        amap.chunkBytes = 1ULL << 30;
        net = std::make_unique<Network>(eq, topo, dram,
                                        BwMechanism::None, roo, pm,
                                        amap);
    }

    EventQueue eq;
    DramParams dram;
    HmcPowerModel pm;
    RooConfig roo;
    std::unique_ptr<Network> net;
};

TEST_F(TracePlayerTest, ReplaysAtRecordedTimes)
{
    build(2);
    std::vector<TraceRecord> trace = {
        {0, 0x0, true, 0},
        {us(1), 1ULL << 30, true, 1},
    };
    TracePlayer player(eq, *net, trace);
    player.start(0);
    eq.run();
    EXPECT_TRUE(player.drained());
    EXPECT_EQ(player.completedReads(), 2u);
    EXPECT_GT(player.avgReadLatencyNs(), 30.0);
}

TEST_F(TracePlayerTest, DrainsGeneratedTrace)
{
    const WorkloadProfile &w = workloadByName("mixE"); // 8 GB
    build(8);
    TracePlayer player(eq, *net, generateTrace(w, us(100), 5));
    player.start(0);
    eq.run();
    EXPECT_TRUE(player.drained());
    EXPECT_GT(player.completedReads(), 100u);
    EXPECT_GT(player.retiredWrites(), 10u);
}

TEST_F(TracePlayerTest, EmptyTraceIsFine)
{
    build(1);
    TracePlayer player(eq, *net, {});
    player.start(0);
    eq.run();
    EXPECT_TRUE(player.drained());
    EXPECT_EQ(player.completedReads(), 0u);
}

} // namespace
} // namespace memnet
