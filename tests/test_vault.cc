/**
 * @file
 * Unit tests for the cycle-level vault model (Table I timing).
 */

#include <gtest/gtest.h>

#include <vector>

#include "dram/vault.hh"
#include "dram/vault_set.hh"
#include "sim/event_queue.hh"

namespace memnet
{
namespace
{

struct Completion
{
    std::uint64_t tag;
    bool isRead;
    Tick when;
};

class VaultTest : public ::testing::Test
{
  protected:
    VaultTest()
        : vault(eq, params,
                [this](std::uint64_t tag, bool is_read, Tick now) {
                    done.push_back({tag, is_read, now});
                })
    {
    }

    EventQueue eq;
    DramParams params;
    Vault vault;
    std::vector<Completion> done;
};

TEST_F(VaultTest, ClosePageReadLatencyIs30ns)
{
    // tRCD (11) + tCL (11) + 64 B burst at 8 GB/s (8 ns) = 30 ns.
    EXPECT_EQ(params.readAccessLatency(), ns(30));
    vault.push({0, true, 1});
    eq.run();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].when, ns(30));
    EXPECT_TRUE(done[0].isRead);
    EXPECT_EQ(vault.servicedReads(), 1u);
}

TEST_F(VaultTest, ReadsPrioritizedOverWrites)
{
    // Both are queued before the scheduler first runs; the read must be
    // selected first even though the write arrived earlier.
    vault.push({0, false, 1});
    vault.push({64 * 32, true, 2});
    eq.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_TRUE(done[0].isRead);
    EXPECT_FALSE(done[1].isRead);
}

TEST_F(VaultTest, QueuedReadBypassesQueuedWrites)
{
    vault.push({0, false, 1});
    vault.push({0, false, 2});
    vault.push({0, false, 3});
    vault.push({64 * 32, true, 4});
    eq.run();
    ASSERT_EQ(done.size(), 4u);
    // The read overtakes every queued write.
    EXPECT_EQ(done[0].tag, 4u);
    EXPECT_TRUE(done[0].isRead);
    EXPECT_EQ(done[1].tag, 1u);
}

TEST_F(VaultTest, BankConflictAddsPrechargeDelay)
{
    // Same bank back to back (in-order service): the second ACT waits
    // for the bank to close (burst end at 30 ns) plus tRP.
    vault.push({0, true, 1});
    vault.push({0, true, 2});
    eq.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0].when, ns(30));
    // ACT at 30 + tRP = 41, data at +tRCD+tCL = 63, burst end 71.
    EXPECT_EQ(done[1].when, ns(71));
}

TEST_F(VaultTest, DifferentBanksAvoidPrechargePenalty)
{
    // Next bank in the same vault: line address advances by 32 lines.
    const std::uint64_t bank_stride = 64ull * 32;
    vault.push({0, true, 1});
    vault.push({bank_stride, true, 2});
    eq.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0].when, ns(30));
    // In-order service: second starts right at 30 ns with no bank wait.
    EXPECT_EQ(done[1].when, ns(60));
}

TEST_F(VaultTest, WriteRecoveryExtendsBankBusy)
{
    // Let the write finish first (a read pushed at the same instant
    // would overtake it), then hit the same bank with a read.
    vault.push({0, false, 1});
    eq.run();
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].when, ns(30));
    vault.push({0, true, 2});
    eq.run();
    ASSERT_EQ(done.size(), 2u);
    // Write burst ends at 30; bank closes at 30 + tWR, precharged at
    // +tRP => ACT at 53; read completes 53 + 30 = 83 ns.
    EXPECT_EQ(done[1].when, ns(83));
}

TEST_F(VaultTest, BufferSpaceAccounting)
{
    EXPECT_TRUE(vault.hasSpace());
    for (int i = 0; i < params.bufferEntries; ++i)
        vault.push({0, false, static_cast<std::uint64_t>(i)});
    EXPECT_FALSE(vault.hasSpace());
    vault.push({0, false, 99});
    EXPECT_EQ(vault.overflowed(), 1u);
    eq.run();
}

TEST_F(VaultTest, ReadsInFlightTracksQueueAndService)
{
    EXPECT_FALSE(vault.readsInFlight());
    vault.push({0, true, 1});
    EXPECT_TRUE(vault.readsInFlight());
    eq.run();
    EXPECT_FALSE(vault.readsInFlight());
}

TEST(VaultSetTest, LineInterleavedDecoding)
{
    EventQueue eq;
    DramParams params;
    int completions = 0;
    VaultSet set(eq, params,
                 [&](std::uint64_t, bool, Tick) { ++completions; });
    EXPECT_EQ(set.vaultOf(0), 0);
    EXPECT_EQ(set.vaultOf(64), 1);
    EXPECT_EQ(set.vaultOf(64 * 31), 31);
    EXPECT_EQ(set.vaultOf(64 * 32), 0);

    // Accesses to different vaults proceed fully in parallel.
    for (int v = 0; v < 8; ++v)
        set.access(static_cast<std::uint64_t>(64 * v), true, v);
    eq.run();
    EXPECT_EQ(completions, 8);
    EXPECT_EQ(eq.now(), ns(30)); // all finished in one access time
    EXPECT_EQ(set.servicedReads(), 8u);
}

TEST(VaultSetTest, ReadsInFlightAggregates)
{
    EventQueue eq;
    DramParams params;
    VaultSet set(eq, params, [](std::uint64_t, bool, Tick) {});
    EXPECT_FALSE(set.readsInFlight());
    set.access(128, true, 1);
    EXPECT_TRUE(set.readsInFlight());
    eq.run();
    EXPECT_FALSE(set.readsInFlight());
}

} // namespace
} // namespace memnet
