/**
 * @file
 * Unit and property tests for the workload profiles.
 */

#include <gtest/gtest.h>

#include "workload/profile.hh"

namespace memnet
{
namespace
{

TEST(Workloads, FourteenProfilesInPaperOrder)
{
    const auto &all = allWorkloads();
    ASSERT_EQ(all.size(), 14u);
    EXPECT_EQ(all[0].name, "ua.D");
    EXPECT_EQ(all[6].name, "is.D");
    EXPECT_EQ(all[7].name, "mixA");
    EXPECT_EQ(all[13].name, "mixG");
}

TEST(Workloads, AverageFootprintMatchesPaper)
{
    // The paper: average memory footprint of all workloads is 17 GB.
    double sum = 0;
    for (const auto &w : allWorkloads())
        sum += w.footprintGB;
    EXPECT_NEAR(sum / 14.0, 17.0, 0.5);
}

TEST(Workloads, AverageChannelUtilMatchesPaper)
{
    // The paper reports 43% average channel utilization.
    double sum = 0;
    for (const auto &w : allWorkloads())
        sum += w.channelUtil;
    EXPECT_NEAR(sum / 14.0, 0.43, 0.02);
}

TEST(Workloads, SpDHasLowestUtilAndMixBHighest)
{
    const auto &all = allWorkloads();
    for (const auto &w : all) {
        EXPECT_GE(w.channelUtil, workloadByName("sp.D").channelUtil);
        EXPECT_LE(w.channelUtil, workloadByName("mixB").channelUtil);
    }
    EXPECT_NEAR(workloadByName("mixB").channelUtil, 0.75, 1e-9);
}

TEST(Workloads, SmallNetworkAveragesFiveModules)
{
    // ceil(17 GB / 4 GB) = 5 modules on average (paper Section III-C).
    double sum = 0;
    for (const auto &w : allWorkloads())
        sum += w.modulesFor(4ULL << 30);
    EXPECT_NEAR(sum / 14.0, 5.0, 1.0);
}

TEST(Workloads, ModulesForRoundsUp)
{
    const WorkloadProfile &w = workloadByName("mixB"); // 11 GB
    EXPECT_EQ(w.modulesFor(4ULL << 30), 3);
    EXPECT_EQ(w.modulesFor(1ULL << 30), 11);
}

TEST(Workloads, LookupUnknownNameDies)
{
    EXPECT_DEATH(workloadByName("nope"), "unknown workload");
}

class WorkloadCdfProperty
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadCdfProperty, CdfControlPointsAreMonotone)
{
    const WorkloadProfile &w = workloadByName(GetParam());
    double x = 0.0, y = 0.0;
    for (const CdfPoint &p : w.cdf) {
        EXPECT_GT(p.addrFrac, x);
        EXPECT_GT(p.accessFrac, y);
        EXPECT_LT(p.addrFrac, 1.0);
        EXPECT_LT(p.accessFrac, 1.0);
        x = p.addrFrac;
        y = p.accessFrac;
    }
}

TEST_P(WorkloadCdfProperty, InverseCdfIsMonotoneAndBounded)
{
    const WorkloadProfile &w = workloadByName(GetParam());
    double prev = -1.0;
    for (int i = 0; i <= 1000; ++i) {
        const double u = i / 1000.0 * 0.999999;
        const double a = w.addressFracFor(u);
        EXPECT_GE(a, 0.0);
        EXPECT_LT(a, 1.0 + 1e-9);
        EXPECT_GE(a, prev - 1e-12) << "non-monotone at u=" << u;
        prev = a;
    }
}

TEST_P(WorkloadCdfProperty, InverseCdfHitsControlPoints)
{
    const WorkloadProfile &w = workloadByName(GetParam());
    for (const CdfPoint &p : w.cdf) {
        EXPECT_NEAR(w.addressFracFor(p.accessFrac - 1e-12), p.addrFrac,
                    1e-6);
    }
}

TEST_P(WorkloadCdfProperty, SaneRates)
{
    const WorkloadProfile &w = workloadByName(GetParam());
    EXPECT_GT(w.channelUtil, 0.0);
    EXPECT_LE(w.channelUtil, 0.9);
    EXPECT_GT(w.readFraction, 0.3);
    EXPECT_LE(w.readFraction, 0.9);
    EXPECT_GT(w.burstDuty, 0.0);
    EXPECT_LE(w.burstDuty, 1.0);
    EXPECT_GT(w.footprintGB, 1.0);
    EXPECT_LT(w.footprintGB, 39.0); // Figure 4 x-axis tops out at 38 GB
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadCdfProperty,
    ::testing::Values("ua.D", "lu.D", "bt.D", "sp.D", "cg.D", "mg.D",
                      "is.D", "mixA", "mixB", "mixC", "mixD", "mixE",
                      "mixF", "mixG"));

} // namespace
} // namespace memnet
